"""Darts: directed half-edges of an undirected multigraph.

Packet Re-cycling reasons about *unidirectional links*: the physical link
``{u, v}`` is used either in the direction ``u -> v`` or ``v -> u``, and the
cellular embedding associates a distinct cycle with each direction.  A
:class:`Dart` captures exactly one such direction of one physical edge.

Because the graph is a multigraph (two routers may be joined by parallel
links), a dart is identified by the *edge id* plus the tail node, not by the
``(tail, head)`` pair alone.
"""

from __future__ import annotations


class Dart:
    """One direction of one physical edge.

    Attributes
    ----------
    edge_id:
        Stable integer identifier of the underlying undirected edge.
    tail:
        Node the dart leaves from.
    head:
        Node the dart points to.

    The dart ``u -> v`` models the router interface at ``u`` that transmits
    towards ``v``; its :meth:`reversed` counterpart models the interface at
    ``v`` that transmits towards ``u``.

    Darts are immutable value objects used as dictionary keys on every
    forwarding hop and in every face trace, so the hash is computed once at
    construction and the reverse dart is cached after the first request.
    """

    __slots__ = ("edge_id", "tail", "head", "_hash", "_reversed")

    def __init__(self, edge_id: int, tail: str, head: str) -> None:
        object.__setattr__(self, "edge_id", edge_id)
        object.__setattr__(self, "tail", tail)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "_hash", hash((edge_id, tail, head)))
        object.__setattr__(self, "_reversed", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"Dart is immutable; cannot set {name!r}")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"Dart is immutable; cannot delete {name!r}")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dart):
            return NotImplemented
        return (
            self.edge_id == other.edge_id
            and self.tail == other.tail
            and self.head == other.head
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other: "Dart") -> bool:
        if not isinstance(other, Dart):
            return NotImplemented
        return (self.edge_id, self.tail, self.head) < (other.edge_id, other.tail, other.head)

    def __le__(self, other: "Dart") -> bool:
        if not isinstance(other, Dart):
            return NotImplemented
        return (self.edge_id, self.tail, self.head) <= (other.edge_id, other.tail, other.head)

    def __gt__(self, other: "Dart") -> bool:
        if not isinstance(other, Dart):
            return NotImplemented
        return (self.edge_id, self.tail, self.head) > (other.edge_id, other.tail, other.head)

    def __ge__(self, other: "Dart") -> bool:
        if not isinstance(other, Dart):
            return NotImplemented
        return (self.edge_id, self.tail, self.head) >= (other.edge_id, other.tail, other.head)

    def __reduce__(self):
        # Pickle by value; the cached hash and reverse are rebuilt on load.
        return (Dart, (self.edge_id, self.tail, self.head))

    def reversed(self) -> "Dart":
        """Return the dart for the same edge traversed in the other direction."""
        back = self._reversed
        if back is None:
            back = Dart(self.edge_id, self.head, self.tail)
            object.__setattr__(back, "_reversed", self)
            object.__setattr__(self, "_reversed", back)
        return back

    @property
    def endpoints(self) -> tuple[str, str]:
        """The ``(tail, head)`` pair of the dart."""
        return (self.tail, self.head)

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return f"Dart({self.tail}->{self.head}, edge={self.edge_id})"
