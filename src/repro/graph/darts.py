"""Darts: directed half-edges of an undirected multigraph.

Packet Re-cycling reasons about *unidirectional links*: the physical link
``{u, v}`` is used either in the direction ``u -> v`` or ``v -> u``, and the
cellular embedding associates a distinct cycle with each direction.  A
:class:`Dart` captures exactly one such direction of one physical edge.

Because the graph is a multigraph (two routers may be joined by parallel
links), a dart is identified by the *edge id* plus the tail node, not by the
``(tail, head)`` pair alone.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Dart:
    """One direction of one physical edge.

    Attributes
    ----------
    edge_id:
        Stable integer identifier of the underlying undirected edge.
    tail:
        Node the dart leaves from.
    head:
        Node the dart points to.

    The dart ``u -> v`` models the router interface at ``u`` that transmits
    towards ``v``; its :meth:`reversed` counterpart models the interface at
    ``v`` that transmits towards ``u``.
    """

    edge_id: int
    tail: str
    head: str

    def reversed(self) -> "Dart":
        """Return the dart for the same edge traversed in the other direction."""
        return Dart(self.edge_id, self.head, self.tail)

    @property
    def endpoints(self) -> tuple[str, str]:
        """The ``(tail, head)`` pair of the dart."""
        return (self.tail, self.head)

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return f"Dart({self.tail}->{self.head}, edge={self.edge_id})"
