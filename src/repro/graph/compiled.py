"""Integer-indexed, array-backed snapshot of a :class:`~repro.graph.multigraph.Graph`.

The string-keyed multigraph is the right construction API, but it is a poor
substrate for the sweep hot path: every Dijkstra relaxation pays string
hashing, ``Edge`` attribute chasing and a generator frame per neighbor.  A
:class:`CompiledGraph` freezes one topology into flat CSR-style adjacency
arrays over small integers:

* node *indices* are the lexicographic ranks of the node names, so a heap
  ordered by ``(cost, index)`` pops in exactly the same order as the
  reference implementation's ``(cost, name)`` heap — tie-breaking is
  bit-identical by construction;
* the adjacency slice of a node preserves the multigraph's edge insertion
  order, so relaxation scans visit neighbors in the same order as
  :meth:`Graph.iter_adjacent`;
* failed links are tested against an integer *exclusion bitmask*
  (``mask >> edge_id & 1``) instead of a per-call ``frozenset``.

A compiled snapshot is immutable and safe to share read-only across threads
and (via pickling or fork) across runner worker processes.  Use
:func:`compile_graph` or the memoizing engine in :mod:`repro.graph.spcache`.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import NodeNotFound
from repro.graph.multigraph import Graph

#: Same tolerance as :mod:`repro.graph.shortest_paths` — the compiled engine
#: must make exactly the same equal-cost decisions as the reference Dijkstra.
_COST_EPSILON = 1e-9


def graph_signature(graph: Graph) -> Tuple:
    """Content identity of a graph: nodes in insertion order plus every edge.

    Two graphs with equal signatures produce byte-identical shortest-path
    results, so the signature doubles as the cache key of the per-process
    engine registry (see :func:`repro.graph.spcache.engine_for`) and as the
    ``graph_version`` component of memoization keys.
    """
    return (
        tuple(graph.nodes()),
        tuple(
            (edge.edge_id, edge.u, edge.v, edge.weight) for edge in graph.edges()
        ),
    )


class CompiledGraph:
    """Read-only CSR adjacency snapshot of one topology.

    Attributes
    ----------
    names:
        Node names ordered by lexicographic rank; ``names[i]`` is the name of
        node index ``i``.
    order:
        Node names in the source graph's insertion order (what
        ``graph.nodes()`` returns) — iteration order of pair sweeps.
    index:
        Mapping ``name -> node index``.
    """

    __slots__ = (
        "name",
        "names",
        "order",
        "index",
        "adj_start",
        "adj_neighbor",
        "adj_edge",
        "adj_weight",
        "adj_items",
        "edge_table",
        "signature",
    )

    def __init__(self, graph: Graph) -> None:
        self.name = graph.name
        order = tuple(graph.nodes())
        names = tuple(sorted(order))
        index = {node: position for position, node in enumerate(names)}
        self.order = order
        self.names = names
        self.index = index

        adj_start: List[int] = [0]
        adj_neighbor: List[int] = []
        adj_edge: List[int] = []
        adj_weight: List[float] = []
        adj_items: List[Tuple[int, int, float]] = []
        for node in names:
            for edge in graph.incident_edges(node):
                neighbor = index[edge.other(node)]
                adj_neighbor.append(neighbor)
                adj_edge.append(edge.edge_id)
                adj_weight.append(edge.weight)
                adj_items.append((edge.edge_id, neighbor, edge.weight))
            adj_start.append(len(adj_neighbor))
        self.adj_start = adj_start
        self.adj_neighbor = adj_neighbor
        self.adj_edge = adj_edge
        self.adj_weight = adj_weight
        #: The same CSR slices as ``(edge_id, neighbor, weight)`` tuples —
        #: unpacking a tuple per relaxation beats three indexed list loads.
        self.adj_items = adj_items
        #: ``edge_id -> (u_index, v_index, weight)`` for O(1) edge lookup.
        self.edge_table: Dict[int, Tuple[int, int, float]] = {
            edge.edge_id: (index[edge.u], index[edge.v], edge.weight)
            for edge in graph.edges()
        }
        self.signature = graph_signature(graph)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def number_of_nodes(self) -> int:
        return len(self.names)

    def number_of_edges(self) -> int:
        return len(self.edge_table)

    def node_index(self, node: str) -> int:
        """Index of ``node``, raising :class:`NodeNotFound` if absent."""
        try:
            return self.index[node]
        except KeyError:
            raise NodeNotFound(node) from None

    def exclusion_mask(self, excluded_edges: Optional[Iterable[int]] = None) -> int:
        """Failed-link set as an integer bitmask (bit ``i`` = edge id ``i``)."""
        mask = 0
        for edge_id in excluded_edges or ():
            mask |= 1 << edge_id
        return mask

    # ------------------------------------------------------------------
    # shortest paths
    # ------------------------------------------------------------------
    def dijkstra_indexed(
        self, source: int, excluded_mask: int = 0
    ) -> Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]:
        """Single-source shortest paths over node indices.

        Semantically identical to :func:`repro.graph.shortest_paths.dijkstra`
        — same float arithmetic, same epsilon comparisons, same
        lexicographic tie-breaking, and the returned dicts have the same
        *insertion order* as the reference implementation's (consumers rely
        on that order for deterministic equal-cost sorts).
        """
        dist: Dict[int, float] = {source: 0.0}
        parent: Dict[int, Tuple[int, int]] = {}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        finalized = bytearray(len(self.names))
        adj_start = self.adj_start
        adj_items = self.adj_items
        dist_get = dist.get
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            cost, node = pop(heap)
            if finalized[node]:
                continue
            finalized[node] = 1
            for edge_id, neighbor, weight in adj_items[
                adj_start[node] : adj_start[node + 1]
            ]:
                if (excluded_mask >> edge_id) & 1:
                    continue
                if finalized[neighbor]:
                    continue
                candidate = cost + weight
                current = dist_get(neighbor)
                if current is None:
                    dist[neighbor] = candidate
                    parent[neighbor] = (node, edge_id)
                    push(heap, (candidate, neighbor))
                    continue
                if candidate < current - _COST_EPSILON:
                    dist[neighbor] = candidate
                    parent[neighbor] = (node, edge_id)
                    push(heap, (candidate, neighbor))
                elif (
                    candidate - current <= _COST_EPSILON
                    and current - candidate <= _COST_EPSILON
                    and (node, edge_id) < parent[neighbor]
                ):
                    dist[neighbor] = candidate
                    parent[neighbor] = (node, edge_id)
                    push(heap, (candidate, neighbor))
        return dist, parent

    def dijkstra_named(
        self, source: str, excluded_edges: Optional[Iterable[int]] = None
    ) -> Tuple[Dict[str, float], Dict[str, Tuple[str, int]]]:
        """Drop-in equivalent of the reference ``dijkstra()`` (name-keyed)."""
        dist_idx, parent_idx = self.dijkstra_indexed(
            self.node_index(source), self.exclusion_mask(excluded_edges)
        )
        names = self.names
        dist = {names[node]: cost for node, cost in dist_idx.items()}
        parent = {
            names[node]: (names[towards], edge_id)
            for node, (towards, edge_id) in parent_idx.items()
        }
        return dist, parent

    def dijkstra_to(
        self,
        source: int,
        target: int,
        excluded_mask: int = 0,
    ) -> Optional[float]:
        """Early-exit Dijkstra: cost from ``source`` to ``target`` or ``None``.

        Stops as soon as the target is finalized; tie-breaking is irrelevant
        for the cost, so this variant skips the parent bookkeeping entirely.
        """
        if source == target:
            return 0.0
        dist: Dict[int, float] = {source: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        finalized = bytearray(len(self.names))
        adj_start = self.adj_start
        adj_items = self.adj_items
        while heap:
            cost, node = heapq.heappop(heap)
            if finalized[node]:
                continue
            if node == target:
                return cost
            finalized[node] = 1
            for edge_id, neighbor, weight in adj_items[
                adj_start[node] : adj_start[node + 1]
            ]:
                if (excluded_mask >> edge_id) & 1:
                    continue
                if finalized[neighbor]:
                    continue
                candidate = cost + weight
                current = dist.get(neighbor)
                if current is None or candidate < current:
                    dist[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor))
        return None

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def component_labels(self, excluded_mask: int = 0) -> List[int]:
        """Connected-component label of every node index under the mask."""
        labels = [-1] * len(self.names)
        adj_start = self.adj_start
        adj_items = self.adj_items
        current = 0
        for root in range(len(self.names)):
            if labels[root] >= 0:
                continue
            labels[root] = current
            stack = [root]
            while stack:
                node = stack.pop()
                for edge_id, neighbor, _weight in adj_items[
                    adj_start[node] : adj_start[node + 1]
                ]:
                    if (excluded_mask >> edge_id) & 1:
                        continue
                    if labels[neighbor] < 0:
                        labels[neighbor] = current
                        stack.append(neighbor)
            current += 1
        return labels

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return (
            f"CompiledGraph({self.name!r}, nodes={len(self.names)}, "
            f"edges={len(self.edge_table)})"
        )


def compile_graph(graph: Graph) -> CompiledGraph:
    """Freeze ``graph`` into a :class:`CompiledGraph` snapshot."""
    return CompiledGraph(graph)
