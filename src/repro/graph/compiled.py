"""Integer-indexed, array-backed snapshot of a :class:`~repro.graph.multigraph.Graph`.

The string-keyed multigraph is the right construction API, but it is a poor
substrate for the sweep hot path: every Dijkstra relaxation pays string
hashing, ``Edge`` attribute chasing and a generator frame per neighbor.  A
:class:`CompiledGraph` freezes one topology into flat CSR-style adjacency
arrays over small integers:

* node *indices* are the lexicographic ranks of the node names, so a heap
  ordered by ``(cost, index)`` pops in exactly the same order as the
  reference implementation's ``(cost, name)`` heap — tie-breaking is
  bit-identical by construction;
* the adjacency slice of a node preserves the multigraph's edge insertion
  order, so relaxation scans visit neighbors in the same order as
  :meth:`Graph.iter_adjacent`;
* failed links are tested against an integer *exclusion bitmask*
  (``mask >> edge_id & 1``) instead of a per-call ``frozenset``.

A compiled snapshot is immutable and safe to share read-only across threads
and (via pickling or fork) across runner worker processes.  Use
:func:`compile_graph` or the memoizing engine in :mod:`repro.graph.spcache`.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import NodeNotFound
from repro.graph.multigraph import Graph

#: Same tolerance as :mod:`repro.graph.shortest_paths` — the compiled engine
#: must make exactly the same equal-cost decisions as the reference Dijkstra.
_COST_EPSILON = 1e-9

#: Weights eligible for incremental SSSP repair must be exact multiples of
#: ``2**-20``: finite sums of such weights are computed exactly in double
#: precision, so the reference Dijkstra's epsilon comparisons degenerate to
#: exact equality and its tie-breaking becomes order-independent — the
#: property every soundness argument of :meth:`CompiledGraph.sssp_repair`
#: rests on.  Graphs with other weights simply fall back to full recompute.
_REPAIR_WEIGHT_SCALE = 1048576.0

#: Weights must also dwarf the tie-breaking epsilon, so a single edge can
#: never bridge two cost classes the reference would consider equal.
_REPAIR_MIN_WEIGHT = 1e-6

#: Exactness also needs headroom at the top: a sum of 2**-20-granular values
#: stays exact only below 2**53 * 2**-20 = 2**33.  Bounding the *total* edge
#: weight (an upper bound on any simple path cost) at 2**32 keeps every
#: reachable sum one power of two clear of the rounding threshold.
_REPAIR_MAX_TOTAL_WEIGHT = 4294967296.0

#: Above this fraction of affected (reachable) vertices a repair would do
#: almost as much heap work as a full recompute while still paying the
#: order-replay pass on top — recompute from scratch instead.
REPAIR_MAX_AFFECTED_FRACTION = 0.5


def graph_signature(graph: Graph) -> Tuple:
    """Content identity of a graph: nodes in insertion order plus every edge.

    Two graphs with equal signatures produce byte-identical shortest-path
    results, so the signature doubles as the cache key of the per-process
    engine registry (see :func:`repro.graph.spcache.engine_for`) and as the
    ``graph_version`` component of memoization keys.
    """
    return (
        tuple(graph.nodes()),
        tuple(
            (edge.edge_id, edge.u, edge.v, edge.weight) for edge in graph.edges()
        ),
    )


class CompiledGraph:
    """Read-only CSR adjacency snapshot of one topology.

    Attributes
    ----------
    names:
        Node names ordered by lexicographic rank; ``names[i]`` is the name of
        node index ``i``.
    order:
        Node names in the source graph's insertion order (what
        ``graph.nodes()`` returns) — iteration order of pair sweeps.
    index:
        Mapping ``name -> node index``.
    """

    __slots__ = (
        "name",
        "names",
        "order",
        "index",
        "adj_start",
        "adj_neighbor",
        "adj_edge",
        "adj_weight",
        "adj_items",
        "edge_table",
        "edge_weight",
        "signature",
        "repair_safe",
    )

    def __init__(self, graph: Graph) -> None:
        self.name = graph.name
        order = tuple(graph.nodes())
        names = tuple(sorted(order))
        index = {node: position for position, node in enumerate(names)}
        self.order = order
        self.names = names
        self.index = index

        adj_start: List[int] = [0]
        adj_neighbor: List[int] = []
        adj_edge: List[int] = []
        adj_weight: List[float] = []
        adj_items: List[Tuple[int, int, float]] = []
        for node in names:
            for edge in graph.incident_edges(node):
                neighbor = index[edge.other(node)]
                adj_neighbor.append(neighbor)
                adj_edge.append(edge.edge_id)
                adj_weight.append(edge.weight)
                adj_items.append((edge.edge_id, neighbor, edge.weight))
            adj_start.append(len(adj_neighbor))
        self.adj_start = adj_start
        self.adj_neighbor = adj_neighbor
        self.adj_edge = adj_edge
        self.adj_weight = adj_weight
        #: The same CSR slices as ``(edge_id, neighbor, weight)`` tuples —
        #: unpacking a tuple per relaxation beats three indexed list loads.
        self.adj_items = adj_items
        #: ``edge_id -> (u_index, v_index, weight)`` for O(1) edge lookup.
        self.edge_table: Dict[int, Tuple[int, int, float]] = {
            edge.edge_id: (index[edge.u], index[edge.v], edge.weight)
            for edge in graph.edges()
        }
        #: ``edge_id -> weight``: the per-hop cost lookup of the sweep fast
        #: paths, built once here instead of per ``deliver_many`` call.
        self.edge_weight: Dict[int, float] = {
            edge.edge_id: edge.weight for edge in graph.edges()
        }
        self.signature = graph_signature(graph)
        #: Whether every edge weight is exact enough for incremental repair
        #: (see :data:`_REPAIR_WEIGHT_SCALE` / :data:`_REPAIR_MAX_TOTAL_WEIGHT`);
        #: checked once at compile time.
        self.repair_safe = (
            all(
                edge.weight > _REPAIR_MIN_WEIGHT
                and (edge.weight * _REPAIR_WEIGHT_SCALE).is_integer()
                for edge in graph.edges()
            )
            and sum(adj_weight) <= 2 * _REPAIR_MAX_TOTAL_WEIGHT
        )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def number_of_nodes(self) -> int:
        return len(self.names)

    def number_of_edges(self) -> int:
        return len(self.edge_table)

    def node_index(self, node: str) -> int:
        """Index of ``node``, raising :class:`NodeNotFound` if absent."""
        try:
            return self.index[node]
        except KeyError:
            raise NodeNotFound(node) from None

    def exclusion_mask(self, excluded_edges: Optional[Iterable[int]] = None) -> int:
        """Failed-link set as an integer bitmask (bit ``i`` = edge id ``i``)."""
        mask = 0
        for edge_id in excluded_edges or ():
            mask |= 1 << edge_id
        return mask

    # ------------------------------------------------------------------
    # shortest paths
    # ------------------------------------------------------------------
    def dijkstra_indexed(
        self, source: int, excluded_mask: int = 0
    ) -> Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]:
        """Single-source shortest paths over node indices.

        Semantically identical to :func:`repro.graph.shortest_paths.dijkstra`
        — same float arithmetic, same epsilon comparisons, same
        lexicographic tie-breaking, and the returned dicts have the same
        *insertion order* as the reference implementation's (consumers rely
        on that order for deterministic equal-cost sorts).
        """
        dist: Dict[int, float] = {source: 0.0}
        parent: Dict[int, Tuple[int, int]] = {}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        finalized = bytearray(len(self.names))
        adj_start = self.adj_start
        adj_items = self.adj_items
        dist_get = dist.get
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            cost, node = pop(heap)
            if finalized[node]:
                continue
            finalized[node] = 1
            for edge_id, neighbor, weight in adj_items[
                adj_start[node] : adj_start[node + 1]
            ]:
                if (excluded_mask >> edge_id) & 1:
                    continue
                if finalized[neighbor]:
                    continue
                candidate = cost + weight
                current = dist_get(neighbor)
                if current is None:
                    dist[neighbor] = candidate
                    parent[neighbor] = (node, edge_id)
                    push(heap, (candidate, neighbor))
                    continue
                if candidate < current - _COST_EPSILON:
                    dist[neighbor] = candidate
                    parent[neighbor] = (node, edge_id)
                    push(heap, (candidate, neighbor))
                elif (
                    candidate - current <= _COST_EPSILON
                    and current - candidate <= _COST_EPSILON
                    and (node, edge_id) < parent[neighbor]
                ):
                    dist[neighbor] = candidate
                    parent[neighbor] = (node, edge_id)
                    push(heap, (candidate, neighbor))
        return dist, parent

    def _repair_frontier(
        self,
        excluded_mask: int,
        base_dist: Dict[int, float],
        affected: List[int],
        in_affected: set,
    ) -> Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]:
        """Dijkstra restricted to the affected region of a repair.

        Every affected vertex is seeded from its unaffected, reachable
        neighbors (the frontier — their distances are frozen), then the heap
        runs over affected vertices only.  The accept rules mirror
        :meth:`dijkstra_indexed`; under ``repair_safe`` weights they reduce
        to the order-independent "smallest (candidate, parent)" choice, so
        the resulting distances and parents equal the full run's.  Affected
        vertices unreachable under the exclusions are absent from the result.
        """
        adj_start = self.adj_start
        adj_items = self.adj_items
        dist: Dict[int, float] = {}
        parent: Dict[int, Tuple[int, int]] = {}
        heap: List[Tuple[float, int]] = []
        push = heapq.heappush
        for node in affected:
            for edge_id, neighbor, weight in adj_items[
                adj_start[node] : adj_start[node + 1]
            ]:
                if (excluded_mask >> edge_id) & 1:
                    continue
                if neighbor in in_affected:
                    continue
                base = base_dist.get(neighbor)
                if base is None:
                    continue
                candidate = base + weight
                current = dist.get(node)
                if current is None:
                    dist[node] = candidate
                    parent[node] = (neighbor, edge_id)
                elif candidate < current - _COST_EPSILON:
                    dist[node] = candidate
                    parent[node] = (neighbor, edge_id)
                elif (
                    candidate - current <= _COST_EPSILON
                    and current - candidate <= _COST_EPSILON
                    and (neighbor, edge_id) < parent[node]
                ):
                    dist[node] = candidate
                    parent[node] = (neighbor, edge_id)
        for node, cost in dist.items():
            push(heap, (cost, node))
        finalized: set = set()
        pop = heapq.heappop
        dist_get = dist.get
        while heap:
            cost, node = pop(heap)
            if node in finalized:
                continue
            finalized.add(node)
            for edge_id, neighbor, weight in adj_items[
                adj_start[node] : adj_start[node + 1]
            ]:
                if (excluded_mask >> edge_id) & 1:
                    continue
                if neighbor not in in_affected or neighbor in finalized:
                    continue
                candidate = cost + weight
                current = dist_get(neighbor)
                if current is None:
                    dist[neighbor] = candidate
                    parent[neighbor] = (node, edge_id)
                    push(heap, (candidate, neighbor))
                elif candidate < current - _COST_EPSILON:
                    dist[neighbor] = candidate
                    parent[neighbor] = (node, edge_id)
                    push(heap, (candidate, neighbor))
                elif (
                    candidate - current <= _COST_EPSILON
                    and current - candidate <= _COST_EPSILON
                    and (node, edge_id) < parent[neighbor]
                ):
                    dist[neighbor] = candidate
                    parent[neighbor] = (node, edge_id)
                    push(heap, (candidate, neighbor))
        return dist, parent

    def sssp_repair_content(
        self,
        excluded_mask: int,
        base_dist: Dict[int, float],
        base_parent: Dict[int, Tuple[int, int]],
        base_masks: Dict[int, int],
        max_affected_fraction: float = REPAIR_MAX_AFFECTED_FRACTION,
    ) -> Optional[Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]]:
        """Content-only repair: correct values and parents, unspecified order.

        For consumers that only *look up* tree entries (the re-convergence
        walk, FCP's per-carried-set SPF tables) the discovery-order replay of
        :meth:`sssp_repair` is pure overhead.  This variant patches a C-speed
        copy of the base dicts instead: unaffected vertices keep their
        entries, affected vertices are re-solved by the frontier Dijkstra and
        overwritten (or dropped when unreachable).  Same fallback conditions
        and ``repair_safe`` prerequisites as :meth:`sssp_repair`; with no
        affected vertices the memoized base dicts are returned as-is.
        """
        affected = [v for v, mask in base_masks.items() if mask & excluded_mask]
        if not affected:
            return base_dist, base_parent
        if len(affected) > max_affected_fraction * len(base_dist):
            return None
        in_affected = set(affected)
        dist, parent = self._repair_frontier(
            excluded_mask, base_dist, affected, in_affected
        )
        dist_out = dict(base_dist)
        parent_out = dict(base_parent)
        for node in affected:
            if node in dist:
                dist_out[node] = dist[node]
                parent_out[node] = parent[node]
            else:
                del dist_out[node]
                del parent_out[node]
        return dist_out, parent_out

    def sssp_repair(
        self,
        source: int,
        excluded_mask: int,
        base_dist: Dict[int, float],
        base_parent: Dict[int, Tuple[int, int]],
        base_order: Tuple[int, ...],
        base_masks: Dict[int, int],
        base_discovery_mask: int,
        max_affected_fraction: float = REPAIR_MAX_AFFECTED_FRACTION,
    ) -> Optional[Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]]:
        """Repair the failure-free SSSP tree of ``source`` under ``excluded_mask``.

        ``base_*`` describe the memoized failure-free run: ``base_dist`` /
        ``base_parent`` are its result, ``base_order`` its finalization (heap
        pop) order, ``base_masks[v]`` the bitmask of edges on the
        failure-free shortest path ``source -> v`` and ``base_discovery_mask``
        the bitmask of edges whose scan *discovered* a vertex (first
        insertion into the result dicts).  The repair

        1. finds the *affected* vertices — one bitmask AND per reachable
           vertex — whose failure-free path crosses an excluded edge; every
           other vertex provably keeps its distance and parent;
        2. re-runs Dijkstra only over the affected region, seeded from the
           unaffected boundary;
        3. replays the discovery scan over the merged finalization order so
           the returned dicts have exactly the insertion order a full
           :meth:`dijkstra_indexed` run would produce.

        When nothing is affected *and* no excluded edge was a discovery edge,
        the failed run is the failure-free run with some no-op scans removed,
        so the memoized base dicts are returned as-is (they are shared
        read-only, like every engine result).

        The result is bit-identical to a full recompute — values, parents,
        tie-breaking and dict insertion order — *provided* the graph is
        :attr:`repair_safe` (callers must check; with exact weight sums the
        reference epsilon tie-breaking is order-independent and the
        finalization order is exactly ``sorted((dist, node))``, which are the
        two facts steps 2 and 3 rely on).  Returns ``None`` when more than
        ``max_affected_fraction`` of the reachable vertices are affected —
        the caller should fall back to a full recompute.
        """
        affected = [v for v, mask in base_masks.items() if mask & excluded_mask]
        if not affected and not (excluded_mask & base_discovery_mask):
            return base_dist, base_parent
        if len(affected) > max_affected_fraction * len(base_dist):
            return None

        adj_start = self.adj_start
        adj_items = self.adj_items

        if affected:
            in_affected = set(affected)
            dist, parent = self._repair_frontier(
                excluded_mask, base_dist, affected, in_affected
            )
            # Merge the two finalization orders: unaffected vertices keep
            # their relative base order, repaired vertices slot in by their
            # new (dist, index) keys.  Both sequences are sorted by that key,
            # and keys are unique, so this is a plain two-way merge.
            repaired = sorted((cost, v) for v, cost in dist.items())
            unaffected = [v for v in base_order if v not in in_affected]
            merged: List[int] = []
            append = merged.append
            i = j = 0
            while i < len(unaffected) and j < len(repaired):
                u = unaffected[i]
                key = (base_dist[u], u)
                if key < repaired[j]:
                    append(u)
                    i += 1
                else:
                    append(repaired[j][1])
                    j += 1
            merged.extend(unaffected[i:])
            for _cost, v in repaired[j:]:
                append(v)
            final_dist = dist
            final_parent = parent
        else:
            in_affected = ()
            merged = base_order
            final_dist = {}
            final_parent = {}

        # Replay the reference discovery scan: walk the finalization order,
        # scan each vertex's adjacency in CSR order, and record every vertex
        # the first time a usable edge reaches it.  This reproduces the
        # insertion order of dijkstra_indexed's result dicts exactly.  A
        # neighbor the reference would skip as already-finalized is always
        # already discovered here (discovery strictly precedes finalization),
        # so the single ``discovered`` test subsumes the finalized test.
        dist_out: Dict[int, float] = {source: 0.0}
        parent_out: Dict[int, Tuple[int, int]] = {}
        discovered = bytearray(len(self.names))
        discovered[source] = 1
        for node in merged:
            for edge_id, neighbor, _weight in adj_items[
                adj_start[node] : adj_start[node + 1]
            ]:
                if discovered[neighbor]:
                    continue
                if (excluded_mask >> edge_id) & 1:
                    continue
                discovered[neighbor] = 1
                if neighbor in in_affected:
                    dist_out[neighbor] = final_dist[neighbor]
                    parent_out[neighbor] = final_parent[neighbor]
                else:
                    dist_out[neighbor] = base_dist[neighbor]
                    parent_out[neighbor] = base_parent[neighbor]
        return dist_out, parent_out

    def discovery_edge_mask(self, source: int, order: Iterable[int]) -> int:
        """Bitmask of the edges whose scan discovered a vertex.

        Replays the failure-free discovery scan over ``order`` (the
        finalization order of the unexcluded run) and collects the edge that
        first reaches each vertex.  Excluding only edges outside this mask
        (and off every shortest path) provably leaves the result dicts of
        :meth:`dijkstra_indexed` untouched — the zero-work fast path of
        :meth:`sssp_repair`.
        """
        adj_start = self.adj_start
        adj_items = self.adj_items
        discovered = bytearray(len(self.names))
        discovered[source] = 1
        mask = 0
        for node in order:
            for edge_id, neighbor, _weight in adj_items[
                adj_start[node] : adj_start[node + 1]
            ]:
                if not discovered[neighbor]:
                    discovered[neighbor] = 1
                    mask |= 1 << edge_id
        return mask

    def dijkstra_named(
        self, source: str, excluded_edges: Optional[Iterable[int]] = None
    ) -> Tuple[Dict[str, float], Dict[str, Tuple[str, int]]]:
        """Drop-in equivalent of the reference ``dijkstra()`` (name-keyed)."""
        dist_idx, parent_idx = self.dijkstra_indexed(
            self.node_index(source), self.exclusion_mask(excluded_edges)
        )
        names = self.names
        dist = {names[node]: cost for node, cost in dist_idx.items()}
        parent = {
            names[node]: (names[towards], edge_id)
            for node, (towards, edge_id) in parent_idx.items()
        }
        return dist, parent

    def dijkstra_to(
        self,
        source: int,
        target: int,
        excluded_mask: int = 0,
    ) -> Optional[float]:
        """Early-exit Dijkstra: cost from ``source`` to ``target`` or ``None``.

        Stops as soon as the target is finalized; tie-breaking is irrelevant
        for the cost, so this variant skips the parent bookkeeping entirely.
        """
        if source == target:
            return 0.0
        dist: Dict[int, float] = {source: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        finalized = bytearray(len(self.names))
        adj_start = self.adj_start
        adj_items = self.adj_items
        while heap:
            cost, node = heapq.heappop(heap)
            if finalized[node]:
                continue
            if node == target:
                return cost
            finalized[node] = 1
            for edge_id, neighbor, weight in adj_items[
                adj_start[node] : adj_start[node + 1]
            ]:
                if (excluded_mask >> edge_id) & 1:
                    continue
                if finalized[neighbor]:
                    continue
                candidate = cost + weight
                current = dist.get(neighbor)
                if current is None or candidate < current:
                    dist[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor))
        return None

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def component_labels(self, excluded_mask: int = 0) -> List[int]:
        """Connected-component label of every node index under the mask."""
        labels = [-1] * len(self.names)
        adj_start = self.adj_start
        adj_items = self.adj_items
        current = 0
        for root in range(len(self.names)):
            if labels[root] >= 0:
                continue
            labels[root] = current
            stack = [root]
            while stack:
                node = stack.pop()
                for edge_id, neighbor, _weight in adj_items[
                    adj_start[node] : adj_start[node + 1]
                ]:
                    if (excluded_mask >> edge_id) & 1:
                        continue
                    if labels[neighbor] < 0:
                        labels[neighbor] = current
                        stack.append(neighbor)
            current += 1
        return labels

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return (
            f"CompiledGraph({self.name!r}, nodes={len(self.names)}, "
            f"edges={len(self.edge_table)})"
        )


def compile_graph(graph: Graph) -> CompiledGraph:
    """Freeze ``graph`` into a :class:`CompiledGraph` snapshot."""
    return CompiledGraph(graph)
