"""Connectivity analysis: components, bridges, biconnectivity.

Packet Re-cycling only guarantees recovery while the network stays connected,
and single-failure coverage of the 1-bit protocol additionally requires
2-edge-connectivity.  The failure-scenario samplers therefore need fast
connectivity checks with an ``excluded_edges`` parameter, and the planar
embedding algorithm needs the biconnected decomposition.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import NodeNotFound
from repro.graph.multigraph import Graph


def connected_components(
    graph: Graph,
    excluded_edges: Optional[Iterable[int]] = None,
) -> List[Set[str]]:
    """Connected components as a list of node sets (insertion order of roots)."""
    excluded: FrozenSet[int] = frozenset(excluded_edges or ())
    seen: Set[str] = set()
    components: List[Set[str]] = []
    for root in graph.nodes():
        if root in seen:
            continue
        component = {root}
        stack = [root]
        seen.add(root)
        while stack:
            node = stack.pop()
            for neighbor, _edge_id, _weight in graph.iter_adjacent(node, excluded):
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    stack.append(neighbor)
        components.append(component)
    return components


def is_connected(
    graph: Graph,
    excluded_edges: Optional[Iterable[int]] = None,
) -> bool:
    """Whether the graph (minus ``excluded_edges``) is connected.

    The empty graph is considered connected; isolated nodes created by edge
    removal make the graph disconnected.
    """
    if graph.number_of_nodes() == 0:
        return True
    return len(connected_components(graph, excluded_edges)) == 1


def same_component(
    graph: Graph,
    u: str,
    v: str,
    excluded_edges: Optional[Iterable[int]] = None,
) -> bool:
    """Whether ``u`` and ``v`` remain connected once ``excluded_edges`` fail."""
    if not graph.has_node(u):
        raise NodeNotFound(u)
    if not graph.has_node(v):
        raise NodeNotFound(v)
    if u == v:
        return True
    excluded: FrozenSet[int] = frozenset(excluded_edges or ())
    seen: Set[str] = {u}
    stack = [u]
    while stack:
        node = stack.pop()
        for neighbor, _edge_id, _weight in graph.iter_adjacent(node, excluded):
            if neighbor == v:
                return True
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return False


def _bridge_and_articulation_search(
    graph: Graph,
) -> Tuple[List[int], Set[str], List[Set[int]]]:
    """Shared Tarjan-style DFS returning bridges, articulation points and
    biconnected components (as edge-id sets)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    bridges_found: List[int] = []
    articulation: Set[str] = set()
    components: List[Set[int]] = []
    edge_stack: List[int] = []
    counter = [0]

    for root in graph.nodes():
        if root in index:
            continue
        # Iterative DFS: each frame is (node, parent_edge_id, iterator state).
        stack: List[Tuple[str, Optional[int], List[Tuple[str, int]], int]] = []
        index[root] = low[root] = counter[0]
        counter[0] += 1
        adjacency = [(edge.other(root), edge.edge_id) for edge in graph.incident_edges(root)]
        stack.append((root, None, adjacency, 0))
        root_children = 0

        while stack:
            node, parent_edge, adjacency, pointer = stack[-1]
            if pointer < len(adjacency):
                stack[-1] = (node, parent_edge, adjacency, pointer + 1)
                neighbor, edge_id = adjacency[pointer]
                if edge_id == parent_edge:
                    continue
                if neighbor not in index:
                    if node == root:
                        root_children += 1
                    edge_stack.append(edge_id)
                    index[neighbor] = low[neighbor] = counter[0]
                    counter[0] += 1
                    child_adjacency = [
                        (edge.other(neighbor), edge.edge_id)
                        for edge in graph.incident_edges(neighbor)
                    ]
                    stack.append((neighbor, edge_id, child_adjacency, 0))
                else:
                    # Back edge (or parallel edge) to an already-visited node.
                    if index[neighbor] < index[node]:
                        edge_stack.append(edge_id)
                    low[node] = min(low[node], index[neighbor])
            else:
                stack.pop()
                if not stack:
                    continue
                parent = stack[-1][0]
                low[parent] = min(low[parent], low[node])
                if parent_edge is not None and low[node] > index[parent]:
                    bridges_found.append(parent_edge)
                if parent_edge is not None and low[node] >= index[parent]:
                    if parent != root:
                        articulation.add(parent)
                    # Pop the biconnected component delimited by parent_edge.
                    component: Set[int] = set()
                    while edge_stack:
                        popped = edge_stack.pop()
                        component.add(popped)
                        if popped == parent_edge:
                            break
                    if component:
                        components.append(component)
        if root_children >= 2:
            articulation.add(root)
    return bridges_found, articulation, components


def bridges(graph: Graph) -> List[int]:
    """Edge ids whose removal disconnects their component (cut edges)."""
    found, _articulation, _components = _bridge_and_articulation_search(graph)
    return sorted(found)


def articulation_points(graph: Graph) -> Set[str]:
    """Nodes whose removal disconnects their component (cut vertices)."""
    _found, articulation, _components = _bridge_and_articulation_search(graph)
    return articulation


def biconnected_edge_components(graph: Graph) -> List[Set[int]]:
    """Biconnected components as sets of edge ids.

    Every edge belongs to exactly one component; a bridge forms a component
    of size one.  The planar embedding algorithm embeds each biconnected
    component independently and merges the rotation systems at cut vertices.
    """
    _found, _articulation, components = _bridge_and_articulation_search(graph)
    return components


def is_two_edge_connected(graph: Graph) -> bool:
    """Whether the graph is connected and has no bridges.

    This is the condition under which the simple 1-bit protocol of
    Section 4.2 guarantees recovery from any single link failure.
    """
    if graph.number_of_nodes() <= 1:
        return True
    return is_connected(graph) and not bridges(graph)


def edge_connectivity_at_least(graph: Graph, k: int) -> bool:
    """Whether every pair of nodes remains connected after any ``k - 1`` edge
    failures.

    For the small values of ``k`` used in the failure samplers (k <= 3) a
    direct check is used: ``k = 1`` is plain connectivity, ``k = 2`` is
    bridge-freeness, larger ``k`` falls back to exhaustive removal of
    ``k - 1``-subsets, which is only intended for the small ISP topologies
    in this package.
    """
    if k <= 0:
        return True
    if k == 1:
        return is_connected(graph)
    if k == 2:
        return is_two_edge_connected(graph)
    if not is_connected(graph):
        return False
    from itertools import combinations

    edge_ids = graph.edge_ids()
    for removal in combinations(edge_ids, k - 1):
        if not is_connected(graph, removal):
            return False
    return True


def non_disconnecting(graph: Graph, edge_ids: Iterable[int]) -> bool:
    """Whether removing ``edge_ids`` keeps the graph connected.

    This is the paper's feasibility condition: PR guarantees recovery for
    every failure combination that does not disconnect the network.
    """
    return is_connected(graph, edge_ids)
