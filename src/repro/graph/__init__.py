"""Graph substrate used by every other subsystem of the reproduction.

The paper's protocol operates on an undirected, weighted network graph in
which every physical link gives rise to two *darts* (directed half-edges),
one per direction of data flow.  This package provides:

* :class:`~repro.graph.multigraph.Graph` — an undirected weighted multigraph
  with stable integer edge identifiers and explicit darts.
* :mod:`~repro.graph.shortest_paths` — Dijkstra and BFS shortest paths,
  shortest-path trees towards a destination and path-cost helpers.
* :mod:`~repro.graph.connectivity` — connected components, bridges,
  articulation points, biconnected components and 2-edge-connectivity.
* :mod:`~repro.graph.traversal` — breadth/depth-first traversals and
  spanning trees.
"""

from repro.graph.darts import Dart
from repro.graph.multigraph import Edge, Graph
from repro.graph.compiled import CompiledGraph, compile_graph, graph_signature
from repro.graph.spcache import ShortestPathEngine, engine_for
from repro.graph.shortest_paths import (
    all_pairs_shortest_costs,
    dijkstra,
    path_cost,
    shortest_path,
    shortest_path_cost,
    shortest_path_dag,
    shortest_path_tree_to,
)
from repro.graph.connectivity import (
    articulation_points,
    biconnected_edge_components,
    bridges,
    connected_components,
    edge_connectivity_at_least,
    is_connected,
    is_two_edge_connected,
)
from repro.graph.traversal import bfs_order, bfs_tree, dfs_order, spanning_tree_edges

__all__ = [
    "CompiledGraph",
    "Dart",
    "Edge",
    "Graph",
    "ShortestPathEngine",
    "compile_graph",
    "engine_for",
    "graph_signature",
    "all_pairs_shortest_costs",
    "dijkstra",
    "path_cost",
    "shortest_path",
    "shortest_path_cost",
    "shortest_path_dag",
    "shortest_path_tree_to",
    "articulation_points",
    "biconnected_edge_components",
    "bridges",
    "connected_components",
    "edge_connectivity_at_least",
    "is_connected",
    "is_two_edge_connected",
    "bfs_order",
    "bfs_tree",
    "dfs_order",
    "spanning_tree_edges",
]
