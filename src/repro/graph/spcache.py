"""Memoized shortest-path engine shared by every routing consumer.

This module is the caching layer between the experiments and the compiled
graph core (:mod:`repro.graph.compiled`):

* :class:`ShortestPathEngine` — per-topology memoization of SSSP trees,
  all-pairs costs, connectivity labels and failure-free path-edge bitmasks,
  all keyed by ``(graph_version, source, frozenset(excluded_edges))`` with an
  LRU bound.
* :func:`engine_for` — a per-process, content-addressed registry: every
  consumer (routing tables, FCP, LFA, the campaign executor) asking for the
  engine of an equal-content graph gets the *same* engine object, which is
  what makes a sweep's cells share one set of shortest-path trees per worker
  process.

Results returned by the engine are cached objects shared between callers and
must be treated as **read-only**.  The underlying algorithms are bit-identical
to the reference implementations in :mod:`repro.graph.shortest_paths` —
identical tie-breaking, identical dict insertion order — which the
equivalence suite in ``tests/graph/test_compiled_equivalence.py`` asserts
across randomized topologies.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import NodeNotFound, NoPathExists
from repro.graph.compiled import CompiledGraph, graph_signature
from repro.graph.multigraph import Graph

#: Default bound of the per-engine SSSP memo (an entry is one (dist, parent)
#: tree, i.e. O(nodes) — FCP sweeps can touch thousands of distinct carried
#: failure sets, hence a generous default).
DEFAULT_SSSP_CACHE = 8192

#: Bound of the per-process engine registry (one entry per distinct topology
#: content seen by this process).
_MAX_ENGINES = 32


_MISSING = object()

#: Engines constructed by this process since import (registry-cached *and*
#: nested hop engines alike) — the per-cell telemetry deltas count builds
#: through this instead of registry size, which eviction would distort.
_ENGINE_BUILDS = 0


class _LruDict(OrderedDict):
    """Tiny LRU: ``get_or_none`` refreshes recency, ``put`` evicts oldest."""

    def __init__(self, maxsize: int) -> None:
        super().__init__()
        self.maxsize = maxsize
        #: Entries dropped by the size bound since construction (telemetry).
        self.evictions = 0

    def get_or_none(self, key):
        # Sentinel-based miss detection: the memo misses of a sweep are hot
        # enough that raising/catching KeyError is measurable.
        value = self.get(key, _MISSING)
        if value is _MISSING:
            return None
        self.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self[key] = value
        self.move_to_end(key)
        while len(self) > self.maxsize:
            self.popitem(last=False)
            self.evictions += 1


class ShortestPathEngine:
    """Compiled + memoized shortest paths for one topology snapshot.

    The engine answers the same questions as the pure functions in
    :mod:`repro.graph.shortest_paths`, but every answer is computed on the
    :class:`~repro.graph.compiled.CompiledGraph` core and memoized, so a
    sweep asking for the same ``(source, excluded)`` tree twice pays one
    dictionary lookup the second time.
    """

    def __init__(self, graph: Graph, sssp_cache_size: int = DEFAULT_SSSP_CACHE) -> None:
        global _ENGINE_BUILDS
        _ENGINE_BUILDS += 1
        self.compiled = CompiledGraph(graph)
        #: Content identity of the snapshot; part of every external cache key.
        self.graph_version = hash(self.compiled.signature)
        self._sssp: _LruDict = _LruDict(sssp_cache_size)
        self._sssp_idx: _LruDict = _LruDict(sssp_cache_size)
        self._tree: _LruDict = _LruDict(sssp_cache_size)
        self._apsp: _LruDict = _LruDict(64)
        self._components: _LruDict = _LruDict(1024)
        self._path_masks: Optional[Dict[str, Dict[str, int]]] = None
        self._pair_mask_rows: Optional[List[Tuple[Tuple[str, str], int]]] = None
        #: Free-form per-engine memo for consumers that live in modules the
        #: engine cannot import (FCP SPF/outcome memos, PR outcome memos,
        #: executor scenario contexts).  Entries here are few and long-lived
        #: singletons; high-churn per-failure-set consumers get their own
        #: bounded cache below so scenario churn cannot evict these.
        self.consumer_cache: _LruDict = _LruDict(256)
        #: Per-failure-set routing tables (see
        #: :func:`repro.routing.tables.cached_routing_tables`): one entry per
        #: (discriminator, excluded set), each O(nodes^2) — bounded separately
        #: because a long campaign touches thousands of distinct failure sets.
        self.tables_cache: _LruDict = _LruDict(128)
        #: Per-source bases for incremental SSSP repair: the failure-free
        #: indexed tree plus its finalization order and per-vertex path-edge
        #: bitmasks.  At most one entry per node, each O(nodes) — never
        #: evicted, so scenario churn cannot force a base rebuild.
        self._repair_base: Dict[str, Tuple] = {}
        self.hits = 0
        self.misses = 0
        #: Memo misses served by repairing the failure-free tree instead of
        #: a full Dijkstra, and misses where repair was attempted but bailed
        #: out (affected fraction above the fallback threshold).
        self.repair_hits = 0
        self.repair_fallbacks = 0

    # ------------------------------------------------------------------
    # single-source shortest paths
    # ------------------------------------------------------------------
    def sssp(
        self, source: str, excluded_edges: Optional[Iterable[int]] = None
    ) -> Tuple[Dict[str, float], Dict[str, Tuple[str, int]]]:
        """Memoized ``(dist, parent)`` from ``source`` (read-only result).

        Bit-identical to :func:`repro.graph.shortest_paths.dijkstra`,
        including the insertion order of the returned dicts.
        """
        excluded: FrozenSet[int] = (
            excluded_edges
            if isinstance(excluded_edges, frozenset)
            else frozenset(excluded_edges or ())
        )
        key = (source, excluded)
        cached = self._sssp.get_or_none(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        # Built on the index-keyed memo so a key needed in both
        # representations runs Dijkstra once.
        dist_idx, parent_idx = self.sssp_indexed(source, excluded)
        names = self.compiled.names
        dist = {names[node]: cost for node, cost in dist_idx.items()}
        parent = {
            names[node]: (names[towards], edge_id)
            for node, (towards, edge_id) in parent_idx.items()
        }
        value = (dist, parent)
        self._sssp.put(key, value)
        return value

    def distances(
        self, source: str, excluded_edges: Optional[Iterable[int]] = None
    ) -> Dict[str, float]:
        """Memoized distance map from ``source`` (read-only result)."""
        return self.sssp(source, excluded_edges)[0]

    def sssp_indexed(
        self, source: str, excluded_edges: Optional[Iterable[int]] = None
    ) -> Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]:
        """Memoized index-keyed ``(dist, parent)`` from ``source``.

        The raw :meth:`CompiledGraph.dijkstra_indexed` result without the
        node-name conversion — for consumers that walk trees in index space
        (read-only).  Memoized separately from :meth:`sssp` so neither
        representation is rebuilt when only the other is needed.
        """
        excluded: FrozenSet[int] = (
            excluded_edges
            if isinstance(excluded_edges, frozenset)
            else frozenset(excluded_edges or ())
        )
        key = (source, excluded)
        cached = self._sssp_idx.get_or_none(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        compiled = self.compiled
        value = None
        if excluded and compiled.repair_safe:
            # Incremental repair: re-run Dijkstra only over the vertices
            # whose failure-free path crosses an excluded edge, then replay
            # the discovery order — bit-identical to the full recompute
            # (asserted across the corpus by the equivalence suite).
            value = compiled.sssp_repair(
                compiled.node_index(source),
                compiled.exclusion_mask(excluded),
                *self._repair_base_for(source),
            )
            if value is not None:
                self.repair_hits += 1
            else:
                self.repair_fallbacks += 1
        if value is None:
            value = compiled.dijkstra_indexed(
                compiled.node_index(source), compiled.exclusion_mask(excluded)
            )
        self._sssp_idx.put(key, value)
        return value

    def sssp_tree(
        self, source: str, excluded_edges: Optional[Iterable[int]] = None
    ) -> Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]:
        """Memoized index-keyed ``(dist, parent)`` with *unspecified* order.

        Same distances, parents and tie-breaking as :meth:`sssp_indexed`,
        but the dict insertion order is not part of the contract — which
        lets a repair skip the discovery-order replay and patch a copy of
        the failure-free tree instead.  For consumers that only look up
        entries (next-hop walks, parent-chain resolution); anything that
        iterates the dicts and leaks the order into results must use
        :meth:`sssp_indexed`.  Results are read-only and may alias the
        ordered memo's (a hit in either representation is shared).
        """
        excluded: FrozenSet[int] = (
            excluded_edges
            if isinstance(excluded_edges, frozenset)
            else frozenset(excluded_edges or ())
        )
        key = (source, excluded)
        cached = self._tree.get_or_none(key)
        if cached is not None:
            self.hits += 1
            return cached
        # An ordered tree is a valid unordered tree: share it when present.
        cached = self._sssp_idx.get_or_none(key)
        if cached is not None:
            self.hits += 1
            self._tree.put(key, cached)
            return cached
        self.misses += 1
        compiled = self.compiled
        value = None
        if excluded and compiled.repair_safe:
            base = self._repair_base_for(source)
            value = compiled.sssp_repair_content(
                compiled.exclusion_mask(excluded), base[0], base[1], base[3]
            )
            if value is not None:
                self.repair_hits += 1
            else:
                self.repair_fallbacks += 1
        if value is None:
            value = compiled.dijkstra_indexed(
                compiled.node_index(source), compiled.exclusion_mask(excluded)
            )
            # A full run is discovery-ordered, so it serves both memos.
            self._sssp_idx.put(key, value)
        self._tree.put(key, value)
        return value

    def _repair_base_for(self, source: str) -> Tuple:
        """The failure-free repair base of ``source`` (built once per source).

        ``(dist, parent, finalization order, path-edge masks, discovery-edge
        mask)`` of the failure-free indexed tree.  Only meaningful on
        ``repair_safe`` graphs, where the finalization order is exactly
        ``sorted((dist, index))`` and path masks follow parent pointers
        (parents always precede children in finalization order because
        weights are strictly positive).
        """
        base = self._repair_base.get(source)
        if base is None:
            compiled = self.compiled
            dist_idx, parent_idx = self.sssp_indexed(source)
            order = tuple(
                node for _cost, node in sorted((c, v) for v, c in dist_idx.items())
            )
            masks: Dict[int, int] = {}
            source_idx = compiled.node_index(source)
            discovery_mask = 0
            if order:
                masks[order[0]] = 0
                for node in order[1:]:
                    towards, edge_id = parent_idx[node]
                    masks[node] = masks[towards] | (1 << edge_id)
                discovery_mask = compiled.discovery_edge_mask(source_idx, order)
            base = (dist_idx, parent_idx, order, masks, discovery_mask)
            self._repair_base[source] = base
        return base

    def cost_between(
        self,
        source: str,
        destination: str,
        excluded_edges: Optional[Iterable[int]] = None,
    ) -> float:
        """Cost of the shortest ``source -> destination`` path.

        Serves from the SSSP memo when the tree is already cached; otherwise
        runs a destination-targeted early-exit Dijkstra (which does *not*
        populate the memo — it finalizes only a prefix of the tree).  Raises
        :class:`NoPathExists` when unreachable.
        """
        excluded: FrozenSet[int] = (
            excluded_edges
            if isinstance(excluded_edges, frozenset)
            else frozenset(excluded_edges or ())
        )
        compiled = self.compiled
        target = compiled.node_index(destination)  # validates the destination
        cached = self._sssp.get_or_none((source, excluded))
        if cached is not None:
            self.hits += 1
            try:
                return cached[0][destination]
            except KeyError:
                raise NoPathExists(source, destination) from None
        cost = compiled.dijkstra_to(
            compiled.node_index(source), target, compiled.exclusion_mask(excluded)
        )
        if cost is None:
            raise NoPathExists(source, destination)
        return cost

    # ------------------------------------------------------------------
    # all-pairs shortest costs
    # ------------------------------------------------------------------
    def all_pairs_shortest_costs(
        self, excluded_edges: Optional[Iterable[int]] = None
    ) -> Dict[str, Dict[str, float]]:
        """Memoized all-pairs cost table (read-only result).

        Identical to :func:`repro.graph.shortest_paths.all_pairs_shortest_costs`:
        one SSSP per node, nodes in graph insertion order.
        """
        excluded: FrozenSet[int] = (
            excluded_edges
            if isinstance(excluded_edges, frozenset)
            else frozenset(excluded_edges or ())
        )
        cached = self._apsp.get_or_none(excluded)
        if cached is not None:
            self.hits += 1
            return cached
        value = {
            node: self.sssp(node, excluded)[0] for node in self.compiled.order
        }
        self._apsp.put(excluded, value)
        return value

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def _labels(self, excluded: FrozenSet[int]) -> List[int]:
        cached = self._components.get_or_none(excluded)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        labels = self.compiled.component_labels(self.compiled.exclusion_mask(excluded))
        self._components.put(excluded, labels)
        return labels

    def same_component(
        self, u: str, v: str, excluded_edges: Optional[Iterable[int]] = None
    ) -> bool:
        """Whether ``u`` and ``v`` stay connected once ``excluded_edges`` fail.

        Equivalent to :func:`repro.graph.connectivity.same_component`, but a
        scenario's component labels are computed once and every subsequent
        pair query is two list lookups.
        """
        compiled = self.compiled
        index = compiled.index
        if u not in index:
            raise NodeNotFound(u)
        if v not in index:
            raise NodeNotFound(v)
        if u == v:
            return True
        excluded: FrozenSet[int] = (
            excluded_edges
            if isinstance(excluded_edges, frozenset)
            else frozenset(excluded_edges or ())
        )
        labels = self._labels(excluded)
        return labels[index[u]] == labels[index[v]]

    def is_connected(self, excluded_edges: Optional[Iterable[int]] = None) -> bool:
        """Whether the whole graph stays connected under the exclusions."""
        if not self.compiled.names:
            return True
        excluded: FrozenSet[int] = (
            excluded_edges
            if isinstance(excluded_edges, frozenset)
            else frozenset(excluded_edges or ())
        )
        labels = self._labels(excluded)
        return max(labels) == 0 if labels else True

    # ------------------------------------------------------------------
    # failure-free path-edge bitmasks (the all_affecting_pairs fast path)
    # ------------------------------------------------------------------
    def path_edge_masks(self) -> Dict[str, Dict[str, int]]:
        """Per destination: bitmask of edges on every source's failure-free path.

        ``masks[destination][source]`` has bit ``e`` set iff edge ``e`` lies
        on the (deterministically tie-broken) failure-free shortest path from
        ``source`` to ``destination`` — the exact path the routing tables
        forward along.  Sources with no route do not appear.  Computed once
        per engine and reused by every scenario.
        """
        if self._path_masks is not None:
            self.hits += 1
            return self._path_masks
        masks: Dict[str, Dict[str, int]] = {}
        for destination in self.compiled.order:
            _dist, parent = self.sssp(destination)
            dest_masks: Dict[str, int] = {destination: 0}
            for node in parent:
                if node in dest_masks:
                    continue
                # Resolve the parent chain iteratively; every hop strictly
                # approaches the destination, so the chain terminates.
                chain = []
                walk = node
                while walk not in dest_masks:
                    chain.append(walk)
                    walk = parent[walk][0]
                mask = dest_masks[walk]
                for link in reversed(chain):
                    mask = mask | (1 << parent[link][1])
                    dest_masks[link] = mask
            del dest_masks[destination]
            masks[destination] = dest_masks
        self._path_masks = masks
        return masks

    def affecting_pairs(self, failed_links: Iterable[int]) -> List[Tuple[str, str]]:
        """Ordered pairs whose failure-free path crosses a failed link.

        Equivalent to :func:`repro.failures.scenarios.all_affecting_pairs`
        with default failure-free tables — same pairs, same order — but each
        pair is one bitmask AND over a flat, precomputed ``(pair, mask)``
        row list (built once per engine; a routed pair's path has at least
        one edge, so a zero mask never occurs and rows hold exactly the
        pairs the nested ``masks[destination].get(source)`` walk would test).
        """
        rows = self._pair_mask_rows
        if rows is None:
            masks = self.path_edge_masks()
            rows = []
            for source in self.compiled.order:
                for destination in self.compiled.order:
                    if source == destination:
                        continue
                    path_mask = masks[destination].get(source)
                    if path_mask:
                        rows.append(((source, destination), path_mask))
            self._pair_mask_rows = rows
        failed_mask = self.compiled.exclusion_mask(failed_links)
        return [pair for pair, mask in rows if mask & failed_mask]

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters plus current memo sizes (for ``repro bench``).

        ``repair_hits`` counts memo misses answered by incrementally
        repairing the failure-free tree; ``repair_fallbacks`` counts misses
        where repair bailed out to a full Dijkstra (affected fraction above
        the threshold).  Both stay zero when ``repair_safe`` is false — on
        such graphs repair is never attempted.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "sssp_entries": len(self._sssp),
            "apsp_entries": len(self._apsp),
            "component_entries": len(self._components),
            "repair_hits": self.repair_hits,
            "repair_fallbacks": self.repair_fallbacks,
            "repair_bases": len(self._repair_base),
            "repair_safe": int(self.compiled.repair_safe),
            "evictions": self.evictions(),
        }

    def evictions(self) -> int:
        """Entries dropped by LRU bounds across every memo of this engine."""
        return (
            self._sssp.evictions
            + self._sssp_idx.evictions
            + self._tree.evictions
            + self._apsp.evictions
            + self._components.evictions
            + self.consumer_cache.evictions
            + self.tables_cache.evictions
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return (
            f"ShortestPathEngine({self.compiled.name!r}, "
            f"nodes={len(self.compiled.names)}, hits={self.hits}, misses={self.misses})"
        )


# ----------------------------------------------------------------------
# per-process, content-addressed engine registry
# ----------------------------------------------------------------------
_ENGINES: "OrderedDict[Tuple, ShortestPathEngine]" = OrderedDict()

#: Guards registry *membership* (insert / evict / clear): the resident
#: ``repro serve`` daemon resolves engines from request threads while its
#: job worker runs campaigns in the same process, and an unguarded
#: ``move_to_end`` racing a ``popitem`` eviction is a KeyError.  Engine
#: internals stay lock-free — per-engine memo races are contained by the
#: daemon's per-request error handling.
_REGISTRY_LOCK = threading.RLock()


def engine_for(graph: Graph) -> ShortestPathEngine:
    """The shared engine of ``graph``'s *content* in this process.

    Keyed by :func:`~repro.graph.compiled.graph_signature`, so distinct
    ``Graph`` objects loaded from the same topology (one per campaign cell)
    all share one engine — and a graph mutated in place simply resolves to a
    fresh engine on its next call, because its signature changed.
    """
    key = graph_signature(graph)
    with _REGISTRY_LOCK:
        engine = _ENGINES.get(key)
        if engine is not None:
            _ENGINES.move_to_end(key)
            return engine
    # Built outside the lock: engine construction is the expensive part,
    # and two threads racing to build the same engine just means the loser
    # registers last (identical content, so either object is correct).
    engine = ShortestPathEngine(graph)
    with _REGISTRY_LOCK:
        existing = _ENGINES.get(key)
        if existing is not None:
            _ENGINES.move_to_end(key)
            return existing
        _ENGINES[key] = engine
        _ENGINES.move_to_end(key)
        while len(_ENGINES) > _MAX_ENGINES:
            _ENGINES.popitem(last=False)
    return engine


def hop_engine_for(graph: Graph) -> ShortestPathEngine:
    """The shared engine of the unit-weight variant of ``graph``.

    Hop-count queries (flooding distances of the re-convergence timing model,
    the paper's ``log2(d)`` DD-bit diameter) run Dijkstra with every weight
    forced to 1.0.  The unit copy is built once per topology content and its
    engine shared through the base engine's consumer cache, so those
    consumers get memoized — and incrementally repaired — hop trees instead
    of copying the graph per query.
    """
    engine = engine_for(graph)
    hop = engine.consumer_cache.get_or_none(("hop-engine",))
    if hop is None:
        unit = graph.copy()
        for edge in unit.edges():
            edge.weight = 1.0
        # Deliberately NOT registered in the per-process registry: the hop
        # engine lives and dies with its base engine via the consumer cache,
        # and registering it would halve the registry's effective capacity
        # (a corpus-wide sweep already keeps one base engine per topology).
        hop = ShortestPathEngine(unit)
        engine.consumer_cache.put(("hop-engine",), hop)
    return hop


def cached_diameter(graph: Graph, hop_count: bool = True) -> float:
    """Graph diameter, memoized per topology content.

    Same value as :func:`repro.graph.shortest_paths.diameter` — the engine
    trees are bit-identical to the reference Dijkstra — but the all-pairs
    pass runs once per (topology content, metric) per process instead of
    once per caller (PR's DD-bit sizing, overhead rows and the CLI all ask).
    """
    if graph.number_of_nodes() == 0:
        return 0.0
    engine = engine_for(graph)
    key = ("diameter", hop_count)
    cached = engine.consumer_cache.get_or_none(key)
    if cached is None:
        source = hop_engine_for(graph) if hop_count else engine
        costs = source.all_pairs_shortest_costs()
        cached = max(
            (max(dist.values()) if dist else 0.0) for dist in costs.values()
        )
        engine.consumer_cache.put(key, cached)
    return cached


def clear_engines(keep: Optional[Iterable[Tuple]] = None) -> None:
    """Drop cached engines (tests, worker initializers, long processes).

    With ``keep`` — an iterable of :func:`graph_signature` keys — only the
    engines *not* listed are dropped.  Campaign worker initializers use this
    to shed engines left over from earlier topology sets (fork-started
    workers inherit the parent's registry) while retaining the warm engines
    of the topologies the current campaign actually sweeps.
    """
    with _REGISTRY_LOCK:
        if keep is None:
            _ENGINES.clear()
            return
        keep_keys = set(keep)
        for key in [key for key in _ENGINES if key not in keep_keys]:
            del _ENGINES[key]


def _all_engines() -> List[ShortestPathEngine]:
    """Registry engines plus the hop engines nested in their consumer caches.

    Hop engines (:func:`hop_engine_for`) are deliberately kept out of the
    registry, so any total summed over ``_ENGINES`` alone silently drops
    their hit/miss work.  The lookup uses plain ``dict.get`` — *not*
    ``get_or_none`` — so taking a telemetry snapshot never refreshes LRU
    recency and therefore cannot change eviction behaviour.
    """
    engines: List[ShortestPathEngine] = []
    with _REGISTRY_LOCK:
        registered = list(_ENGINES.values())
    for engine in registered:
        engines.append(engine)
        hop = dict.get(engine.consumer_cache, ("hop-engine",))
        if hop is not None:
            engines.append(hop)
    return engines


#: ``cache_info`` keys that are monotonic event counts (deltas are
#: meaningful); the remaining keys are gauges of current memo sizes.
ENGINE_COUNTER_KEYS = (
    "hits",
    "misses",
    "repair_hits",
    "repair_fallbacks",
    "evictions",
)


def engine_counter_totals() -> Dict[str, int]:
    """Monotonic engine counters summed over every engine in this process.

    The snapshot the campaign executor diffs around each cell to attribute
    engine work (memo hits/misses, repair hits/fallbacks, LRU evictions,
    engine builds) to the cell that caused it.  Only monotonic counters are
    included — memo *sizes* are gauges and would make deltas meaningless.
    """
    totals: Dict[str, int] = {name: 0 for name in ENGINE_COUNTER_KEYS}
    for engine in _all_engines():
        totals["hits"] += engine.hits
        totals["misses"] += engine.misses
        totals["repair_hits"] += engine.repair_hits
        totals["repair_fallbacks"] += engine.repair_fallbacks
        totals["evictions"] += engine.evictions()
    totals["builds"] = _ENGINE_BUILDS
    return totals


def aggregate_cache_info() -> Dict[str, int]:
    """Summed :meth:`ShortestPathEngine.cache_info` over this process's engines.

    ``repro bench`` reports these totals so the incremental-repair hit rate
    of a workload is visible next to its wall-clock timing.  Hop engines
    nested in consumer caches are included.

    **Scope caveat:** this sees only the *calling process*.  Cells executed
    by worker processes accumulate their counters in those workers, so a
    parallel sweep's totals must be read from the merged telemetry manifest
    (``CampaignResult.telemetry()`` / the ``.telemetry.json`` sidecar),
    which routes per-worker counters back through the chunk-result
    envelopes — serial and parallel runs of the same campaign then report
    identical totals for identical work.
    """
    totals: Dict[str, int] = {}
    for engine in _all_engines():
        for name, value in engine.cache_info().items():
            totals[name] = totals.get(name, 0) + value
    totals["engines"] = len(_ENGINES)
    return totals
