"""Convenience entry points for the most common library uses.

Most users want one of four things: "give me a PR instance for my topology",
"compare PR against the baselines under these failures", "give me the
stretch CCDF the paper plots", or "sweep the whole evaluation grid".  These
helpers wrap the lower-level packages so that each of those is a single
call; everything they do can also be done explicitly through
:mod:`repro.core`, :mod:`repro.baselines`, :mod:`repro.experiments` and
:mod:`repro.runner`.

For sweeps, :class:`~repro.runner.spec.CampaignSpec` and
:func:`~repro.runner.executor.run_campaign` are re-exported here: describe
the grid (topologies x schemes x discriminators x failure scenarios)
declaratively and run it in parallel with a content-addressed offline-stage
artifact cache and resume-from-partial.  ``run_campaign`` returns a
:class:`~repro.runner.executor.CampaignHandle` whose ``results=`` backend
is selected by path suffix — a ``.sqlite`` path lands the campaign in the
queryable :class:`~repro.store.database.CampaignStore`, a ``.jsonl`` path
streams the checksummed interchange format — and which exposes ``.store``,
``.query(expr)`` (the ``scheme=pr topology~zoo campaign:last10`` grammar of
:mod:`repro.store.query`), ``.summary()`` and ``.telemetry()``.

Deprecated spellings (kept as shims that emit :class:`DeprecationWarning`):

===============================================  ===========================
old                                              new
===============================================  ===========================
``run_campaign(spec, results_path="c.jsonl")``   ``run_campaign(spec, results="c.jsonl")``
``CampaignResult`` (as the return-type name)     ``CampaignHandle`` (same object)
manifest sidecar next to ``--results`` JSONL     ``handle.telemetry()`` / the store's telemetry table
===============================================  ===========================

The failure-scenario toolbox rides along: the enumerators and sampler behind
the built-in scenario kinds (:func:`single_link_failures`,
:func:`sample_multi_link_failures`, :func:`node_failure_scenarios`) and the
pluggable scenario-model registry of :mod:`repro.scenarios`
(:func:`available_scenario_models`, :func:`get_scenario_model`,
:func:`register_scenario_model`), so custom scenario sets can be built and
swept without reaching into subpackages.

So does the topology corpus (:mod:`repro.topologies.corpus`):
:func:`parse_topology_spec` / :func:`build_topology` resolve
``name[:k=v,...]`` specs (legacy ISP maps, parameterized synthetic
families, committed Topology Zoo snapshots), :func:`topology_set` expands
the named corpus sets campaigns shard across, and
:func:`register_topology_family` plugs in new families.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.scheme import PacketRecycling
from repro.experiments.stretch import default_schemes, run_stretch_experiment
from repro.failures.sampling import (  # noqa: F401  (re-exported convenience API)
    sample_multi_link_failures,
)
from repro.failures.scenarios import (  # noqa: F401  (re-exported convenience API)
    FailureScenario,
    node_failure_scenarios,
    single_link_failures,
)
from repro.forwarding.engine import ForwardingOutcome
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.multigraph import Graph
from repro.graph.spcache import (  # noqa: F401  (re-exported convenience API)
    ShortestPathEngine,
    engine_for,
)
from repro.routing.discriminator import DiscriminatorKind
from repro.runner import (  # noqa: F401  (re-exported convenience API)
    ArtifactCache,
    CampaignHandle,
    CampaignResult,
    CampaignSpec,
    ScenarioSpec,
    run_campaign,
)
from repro.store import (  # noqa: F401  (re-exported convenience API)
    CampaignStore,
    Filter,
    ResultStore,
    migrate as migrate_results,
    parse_filter,
    resolve_results,
)
from repro.scenarios import (  # noqa: F401  (re-exported convenience API)
    ScenarioModel,
    available_scenario_models,
    get_scenario_model,
    register_scenario_model,
)
from repro.topologies.corpus import (  # noqa: F401  (re-exported convenience API)
    TopologyFamily,
    TopologySpec,
    build_topology,
    parse_topology_spec,
    register_family as register_topology_family,
    topology_set,
    validate_topology,
)


def build_packet_recycling(
    graph: Graph,
    discriminator_kind: DiscriminatorKind = DiscriminatorKind.HOP_COUNT,
    embedding_method: str = "auto",
    embedding_seed: Optional[int] = 7,
) -> PacketRecycling:
    """Build a ready-to-forward Packet Re-cycling instance for a topology.

    This performs the full offline stage of the paper: cellular embedding,
    cycle-following tables and routing tables with the DD column.
    """
    return PacketRecycling(
        graph,
        discriminator_kind=discriminator_kind,
        embedding_method=embedding_method,
        embedding_seed=embedding_seed,
    )


def compare_schemes(
    graph: Graph,
    source: str,
    destination: str,
    failed_links: Iterable[int],
    schemes: Optional[Sequence[ForwardingScheme]] = None,
) -> Dict[str, ForwardingOutcome]:
    """Deliver one packet under every scheme and return the outcomes by name."""
    if schemes is None:
        schemes = default_schemes(graph)
    failed = list(failed_links)
    return {
        scheme.name: scheme.deliver(source, destination, failed_links=failed)
        for scheme in schemes
    }


def stretch_ccdf(
    graph: Graph,
    scenarios: Sequence[FailureScenario],
    schemes: Optional[Sequence[ForwardingScheme]] = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """The Figure 2 curves ``P(Stretch > x | path)`` for the given scenarios."""
    result = run_stretch_experiment(graph, scenarios, schemes)
    return result.ccdf
