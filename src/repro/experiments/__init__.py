"""Experiment runners that regenerate the paper's tables and figures.

Every panel of Figure 2, the Table 1 example, the Section 6 overhead
discussion and the introduction's convergence-loss estimate have a runner in
this package; the benchmark suite under ``benchmarks/`` calls these runners
and prints the regenerated rows/series.  Two ablations not present in the
paper (embedding quality vs. stretch, and the choice of distance
discriminator) are included because the paper's Section 7 calls them out as
the relevant trade-offs.
"""

from repro.experiments.stretch import (
    FIGURE2_PANELS,
    StretchExperimentResult,
    default_schemes,
    figure2_panel,
    run_stretch_experiment,
)
from repro.experiments.overhead import overhead_experiment
from repro.experiments.convergence import ConvergenceLossResult, convergence_loss_experiment
from repro.experiments.ablation import dd_kind_ablation, embedding_quality_ablation
from repro.experiments.nodefail import NodeFailureResult, node_failure_experiment
from repro.experiments.flapping import FLAP_PROCESSES, FlappingRow, flapping_experiment
from repro.experiments.asciiplot import render_ccdf_plot, render_table

__all__ = [
    "FIGURE2_PANELS",
    "StretchExperimentResult",
    "default_schemes",
    "figure2_panel",
    "run_stretch_experiment",
    "overhead_experiment",
    "ConvergenceLossResult",
    "convergence_loss_experiment",
    "dd_kind_ablation",
    "embedding_quality_ablation",
    "NodeFailureResult",
    "node_failure_experiment",
    "FLAP_PROCESSES",
    "FlappingRow",
    "flapping_experiment",
    "render_ccdf_plot",
    "render_table",
]
