"""Node-failure evaluation.

The paper's title and abstract cover "link or node failures"; the mechanism
handles a node failure as the simultaneous bidirectional failure of all of the
node's links (packets sourced at or destined to the failed router are
obviously unrecoverable and excluded).  This runner measures repair coverage
and stretch for every single-node failure of a topology, for any set of
schemes, over the pairs that do not involve the failed node and remain
connected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.failures.scenarios import node_failure_scenarios
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.connectivity import same_component
from repro.graph.multigraph import Graph
from repro.metrics.ccdf import distribution_summary
from repro.routing.tables import RoutingTables


@dataclass
class NodeFailureResult:
    """Coverage and stretch of every scheme under single-node failures."""

    topology: str
    scenarios: int
    measured_pairs: int
    delivery_ratio: Dict[str, float] = field(default_factory=dict)
    stretch_summary: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def scheme_names(self) -> List[str]:
        return list(self.delivery_ratio)


def _affected_pairs_for_node(
    graph: Graph,
    tables: RoutingTables,
    failed_node: str,
    failed_links: Tuple[int, ...],
) -> List[Tuple[str, str]]:
    """Pairs not involving the failed node whose route crossed it and which stay connected."""
    failed = set(failed_links)
    pairs: List[Tuple[str, str]] = []
    for source in graph.nodes():
        if source == failed_node:
            continue
        for destination in graph.nodes():
            if destination in (source, failed_node):
                continue
            if not tables.has_route(source, destination):
                continue
            node = source
            affected = False
            while node != destination:
                entry = tables.entry(node, destination)
                if entry.egress.edge_id in failed:
                    affected = True
                    break
                node = entry.next_hop
            if not affected:
                continue
            if same_component(graph, source, destination, failed):
                pairs.append((source, destination))
    return pairs


def node_failure_experiment(
    graph: Graph,
    schemes: Optional[Sequence[ForwardingScheme]] = None,
    exclude: Optional[Sequence[str]] = None,
    cache=None,
) -> NodeFailureResult:
    """Run every scheme over every single-node failure of ``graph``.

    ``exclude`` removes nodes from the failure set (e.g. nodes whose loss
    would disconnect the topology, if the caller wants to stay within the
    paper's guarantee regime).  ``schemes`` defaults to the Figure 2 trio;
    ``cache`` is forwarded to
    :func:`repro.experiments.stretch.default_schemes` so PR's offline stage
    is served from the artifact cache.
    """
    if schemes is None:
        from repro.experiments.stretch import default_schemes

        schemes = default_schemes(graph, cache=cache)
    if not schemes:
        raise ExperimentError("at least one scheme is required")
    tables = RoutingTables(graph)
    scenarios = node_failure_scenarios(graph, exclude=exclude)
    result = NodeFailureResult(topology=graph.name, scenarios=len(scenarios), measured_pairs=0)

    workload: List[Tuple[Tuple[int, ...], List[Tuple[str, str]]]] = []
    for scenario in scenarios:
        failed_node = scenario.description.split(" ", 1)[1]
        pairs = _affected_pairs_for_node(graph, tables, failed_node, scenario.failed_links)
        if pairs:
            workload.append((scenario.failed_links, pairs))
            result.measured_pairs += len(pairs)

    for scheme in schemes:
        delivered = 0
        attempts = 0
        stretches: List[float] = []
        for failed_links, pairs in workload:
            outcomes = scheme.deliver_many(pairs, failed_links=failed_links)
            for (source, destination), outcome in outcomes.items():
                attempts += 1
                if outcome.delivered:
                    delivered += 1
                    baseline = tables.cost(source, destination)
                    if baseline > 0:
                        stretches.append(outcome.cost / baseline)
        result.delivery_ratio[scheme.name] = delivered / attempts if attempts else 1.0
        result.stretch_summary[scheme.name] = distribution_summary(stretches)
    return result
