"""Plain-text rendering of experiment output (tables and CCDF plots).

The paper's figures are line plots; in a library context the most useful
artefact is the underlying series plus a terminal-friendly rendering, so that
``pytest benchmarks/`` output can be compared against the paper's figures at
a glance and piped into CSV for external plotting.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = [format_row(list(headers)), format_row(["-" * width for width in widths])]
    lines.extend(format_row(row) for row in materialised)
    return "\n".join(lines)


def render_ccdf_plot(
    curves: Dict[str, List[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "P(Stretch > x | path)",
) -> str:
    """ASCII rendering of one or more CCDF curves.

    ``curves`` maps a series label to its ``(x, probability)`` points; every
    series is drawn with a distinct marker on a shared canvas whose x-axis
    spans the union of the x values and whose y-axis spans [0, 1].
    """
    markers = "*o+x#@%&"
    all_points = [point for curve in curves.values() for point in curve]
    if not all_points:
        return f"{title}\n(no data)"
    x_values = [x for x, _y in all_points]
    x_min, x_max = min(x_values), max(x_values)
    span = (x_max - x_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for series_index, (label, curve) in enumerate(sorted(curves.items())):
        marker = markers[series_index % len(markers)]
        for x, probability in curve:
            column = int(round((x - x_min) / span * (width - 1)))
            row = int(round((1.0 - max(0.0, min(1.0, probability))) * (height - 1)))
            canvas[row][column] = marker

    lines = [title]
    for row_index, row in enumerate(canvas):
        y_label = 1.0 - row_index / (height - 1)
        lines.append(f"{y_label:4.2f} |" + "".join(row))
    axis = " " * 6 + "-" * width
    lines.append(axis)
    lines.append(" " * 6 + f"{x_min:<10.1f}{'stretch':^{max(0, width - 20)}}{x_max:>10.1f}")
    legend = "  ".join(
        f"{markers[index % len(markers)]}={label}" for index, label in enumerate(sorted(curves))
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def ccdf_rows(curves: Dict[str, List[Tuple[float, float]]]) -> List[List[object]]:
    """CCDF curves as table rows: one row per x value, one column per series."""
    labels = sorted(curves)
    thresholds = sorted({x for curve in curves.values() for x, _p in curve})
    lookup = {
        label: {x: probability for x, probability in curve} for label, curve in curves.items()
    }
    rows: List[List[object]] = []
    for threshold in thresholds:
        row: List[object] = [f"{threshold:g}"]
        for label in labels:
            probability = lookup[label].get(threshold)
            row.append("-" if probability is None else f"{probability:.3f}")
        rows.append(row)
    return rows
