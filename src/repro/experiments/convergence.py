"""Packets lost during re-convergence vs. under Packet Re-cycling.

This is the experiment behind the introduction's motivation: a loaded link
fails, the IGP takes on the order of a second to re-converge, and every
packet forwarded onto the dead link in the meantime is lost.  PR reroutes the
same packets over the complementary cycle, losing (essentially) none.

The simulation uses a scaled-down packet rate so it runs in milliseconds of
CPU time; :func:`repro.simulator.des.estimate_packets_lost` extrapolates the
measured loss fraction to the OC-192 rates quoted by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.scheme import PacketRecycling
from repro.errors import ExperimentError
from repro.forwarding.network_state import NetworkState
from repro.graph.multigraph import Graph
from repro.routing.reconvergence import ReconvergenceModel
from repro.routing.tables import RoutingTables
from repro.simulator.des import PacketLevelSimulator, SimulationReport, estimate_packets_lost
from repro.simulator.flows import TrafficFlow
from repro.simulator.forwarders import (
    ConvergenceAwareForwarder,
    ProtectionForwarder,
    StaticForwarder,
)
from repro.simulator.links import LinkModel


@dataclass
class ConvergenceLossResult:
    """Loss statistics of each behaviour plus the paper-scale extrapolation."""

    topology: str
    failed_link: Tuple[str, str]
    convergence_time: float
    reports: Dict[str, SimulationReport]
    extrapolated_losses: Dict[str, float]

    def loss_fraction(self, behaviour: str) -> float:
        """Measured loss fraction of one behaviour."""
        return self.reports[behaviour].loss_fraction


def convergence_loss_experiment(
    graph: Graph,
    source: str,
    destination: str,
    failed_edge: Optional[int] = None,
    rate_pps: float = 2000.0,
    duration: float = 2.0,
    failure_time: float = 0.2,
    link_model: Optional[LinkModel] = None,
    reconvergence_model: Optional[ReconvergenceModel] = None,
    detection_delay: float = 0.05,
    paper_link_rate_bps: float = 9_953_280_000.0,
    paper_utilization: float = 0.25,
    embedding_seed: int = 7,
) -> ConvergenceLossResult:
    """Run the convergence-loss comparison for one flow and one link failure.

    The failed link defaults to the first link on the flow's shortest path,
    which is the worst case for that flow.  Three behaviours are simulated:

    * ``no-protection`` — stale tables forever (upper bound on loss),
    * ``re-convergence`` — routers flip to new tables at their individual
      convergence instants (from :class:`ReconvergenceModel`),
    * ``Packet Re-cycling`` — PR reroutes as soon as the adjacent router
      detects the failure (``detection_delay``).
    """
    tables = RoutingTables(graph)
    if failed_edge is None:
        path = tables.shortest_path(source, destination)
        if len(path) < 2:
            raise ExperimentError("source and destination must differ")
        # Fail the link in the middle of the path so that upstream routers
        # keep blindly forwarding towards it until they learn better.
        middle = len(path) // 2 - 1 if len(path) > 2 else 0
        failed_edge = tables.entry(path[middle], destination).egress.edge_id
    edge = graph.edge(failed_edge)

    reconvergence_model = reconvergence_model or ReconvergenceModel(
        detection_delay=detection_delay
    )
    timeline = reconvergence_model.convergence_delay(graph, failed_edge, failure_time)
    link_model = link_model or LinkModel()

    flow = TrafficFlow(
        source=source,
        destination=destination,
        rate_pps=rate_pps,
        packet_size_bytes=1000,
        start=0.0,
        end=duration,
    )

    failed_state = NetworkState(graph, [failed_edge])

    behaviours = {
        "no-protection": StaticForwarder(graph, failed_state, tables),
        "re-convergence": ConvergenceAwareForwarder(
            graph, failed_state, timeline.updated_at, tables
        ),
        "Packet Re-cycling": ProtectionForwarder(
            PacketRecycling(graph, embedding_seed=embedding_seed),
            failed_state,
            active_from=failure_time + detection_delay,
        ),
    }

    reports: Dict[str, SimulationReport] = {}
    for name, forwarder in behaviours.items():
        simulator = PacketLevelSimulator(graph, forwarder, link_model)
        # Before the failure instant every behaviour forwards on the intact
        # network: model this by only failing the link when the flow reaches
        # the failure time.  The simplest faithful way with a static failure
        # set is to simulate the pre-failure and post-failure windows
        # separately; pre-failure loss is zero by construction, so simulate
        # the post-failure window only and add the pre-failure packets as
        # delivered.
        pre_failure_packets = int(failure_time * rate_pps)
        post_flow = TrafficFlow(
            source=source,
            destination=destination,
            rate_pps=rate_pps,
            packet_size_bytes=1000,
            start=failure_time,
            end=duration,
        )
        simulator.add_flow(post_flow)
        report = simulator.run()
        report.packets_sent += pre_failure_packets
        report.packets_delivered += pre_failure_packets
        reports[name] = report

    outage_by_behaviour = {
        "no-protection": duration - failure_time,
        "re-convergence": max(0.0, timeline.converged_time - failure_time),
        "Packet Re-cycling": detection_delay,
    }
    extrapolated = {
        name: estimate_packets_lost(
            paper_link_rate_bps, paper_utilization, outage_by_behaviour[name]
        )
        for name in behaviours
    }

    return ConvergenceLossResult(
        topology=graph.name,
        failed_link=(edge.u, edge.v),
        convergence_time=timeline.converged_time - failure_time,
        reports=reports,
        extrapolated_losses=extrapolated,
    )
