"""Overhead comparison experiment (Section 6's qualitative table, made concrete)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.fcp import FailureCarryingPackets
from repro.baselines.lfa import LoopFreeAlternates
from repro.baselines.reconvergence import Reconvergence
from repro.core.scheme import PacketRecycling, SimplePacketRecycling
from repro.graph.multigraph import Graph
from repro.metrics.overhead import OverheadRow, overhead_comparison
from repro.topologies.registry import by_name


def overhead_experiment(
    topology_names: Optional[Sequence[str]] = None,
    include_extras: bool = True,
    embedding_seed: int = 7,
) -> Dict[str, List[OverheadRow]]:
    """Header/memory/computation overheads of every scheme on every topology.

    Returns ``{topology name: [OverheadRow, ...]}``.  ``include_extras`` adds
    the 1-bit PR variant and LFA to the three schemes of the paper, which is
    useful context when reading the table.
    """
    if topology_names is None:
        topology_names = ["abilene", "teleglobe", "geant"]
    results: Dict[str, List[OverheadRow]] = {}
    for name in topology_names:
        graph: Graph = by_name(name)
        schemes = [
            Reconvergence(graph),
            FailureCarryingPackets(graph),
            PacketRecycling(graph, embedding_seed=embedding_seed),
        ]
        if include_extras:
            schemes.append(SimplePacketRecycling(graph, embedding_seed=embedding_seed))
            schemes.append(LoopFreeAlternates(graph))
        results[name] = overhead_comparison(graph, schemes)
    return results
