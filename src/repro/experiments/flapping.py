"""Link-flapping experiment (the Section 7 discussion, quantified).

A flapping link makes any alternate-forwarding scheme dangerous: a packet
that was deflected because the link was down may meet the same link up again
while still cycle following, breaking the assumptions behind the termination
argument.  The paper's counter-measure is a hold-down: "link state transitions
only happen after the link has been idle for long enough".

This experiment generates a flapping sample path, applies hold-down filters of
increasing length and reports, for each setting:

* how many state transitions the control plane actually acts on;
* the *inconsistency time* — how long the link is advertised up while it is
  really down (the window in which packets can be black-holed or meet the
  link in inconsistent states);
* the *capacity loss* — how long the link is advertised down while it is
  really up (the price paid for damping).

Larger hold-downs trade capacity for stability, which is exactly the knob the
paper hands to the operator.

The sample path defaults to the exponential process of
:class:`~repro.failures.flapping.LinkFlappingProcess`, but any churn process
from the scenario-model library can be substituted (``process=
"gilbert-elliott"`` for bursty Markov-chain churn, ``"weibull"`` for
heavy-tailed repair times), so the hold-down trade-off can be read off under
the same traces the ``churn`` scenario model feeds into campaigns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.failures.flapping import FlapEvent, LinkFlappingProcess, hold_down_filter
from repro.scenarios.churn import CHURN_PROCESSES, churn_events


@dataclass(frozen=True)
class FlappingRow:
    """Outcome of one hold-down setting on one flapping sample path."""

    hold_down: float
    raw_transitions: int
    acted_transitions: int
    advertised_up_while_down: float
    advertised_down_while_up: float

    @property
    def inconsistency_fraction(self) -> float:
        """Advertised-up-while-down time as a fraction of the horizon (set on build)."""
        return self.advertised_up_while_down


def _state_timeline(events: Sequence[FlapEvent], horizon: float, initially_up: bool = True) -> List[Tuple[float, float, bool]]:
    """Turn a transition list into ``(start, end, up)`` segments covering [0, horizon)."""
    segments: List[Tuple[float, float, bool]] = []
    state = initially_up
    last = 0.0
    for event in sorted(events, key=lambda item: item.time):
        if event.time >= horizon:
            break
        if event.time > last:
            segments.append((last, event.time, state))
        state = event.up
        last = event.time
    if last < horizon:
        segments.append((last, horizon, state))
    return segments


def _overlap_where(
    actual: Sequence[Tuple[float, float, bool]],
    advertised: Sequence[Tuple[float, float, bool]],
    actual_up: bool,
    advertised_up: bool,
) -> float:
    """Total time where the actual and advertised states match the given pattern."""
    total = 0.0
    for a_start, a_end, a_state in actual:
        if a_state != actual_up:
            continue
        for b_start, b_end, b_state in advertised:
            if b_state != advertised_up:
                continue
            overlap = min(a_end, b_end) - max(a_start, b_start)
            if overlap > 0:
                total += overlap
    return total


#: Sample-path generators accepted by :func:`flapping_experiment`: the
#: exponential baseline plus every churn process the scenario library ships.
FLAP_PROCESSES = ("exponential",) + CHURN_PROCESSES


def flapping_experiment(
    mean_up_time: float = 2.0,
    mean_down_time: float = 0.5,
    horizon: float = 300.0,
    hold_downs: Optional[Sequence[float]] = None,
    seed: int = 42,
    process: str = "exponential",
    shape: float = 1.5,
    step: float = 0.1,
) -> List[FlappingRow]:
    """Evaluate hold-down settings against one flapping sample path.

    ``process`` selects the churn model behind the sample path; ``shape``
    only applies to ``"weibull"`` and ``step`` only to ``"gilbert-elliott"``.
    """
    if hold_downs is None:
        hold_downs = [0.0, 1.0, 2.0, 5.0, 10.0]
    if process == "exponential":
        raw_events = LinkFlappingProcess(
            mean_up_time, mean_down_time, seed=seed
        ).events_until(horizon)
    elif process in FLAP_PROCESSES:
        raw_events = churn_events(
            process,
            rng=random.Random(seed),
            horizon=horizon,
            mean_up=mean_up_time,
            mean_down=mean_down_time,
            shape=shape,
            step=step,
        )
    else:
        raise ExperimentError(
            f"unknown flapping process {process!r}; expected one of {FLAP_PROCESSES}"
        )
    actual = _state_timeline(raw_events, horizon)

    rows: List[FlappingRow] = []
    for hold_down in hold_downs:
        if hold_down <= 0.0:
            acted_events = list(raw_events)
        else:
            acted_events = hold_down_filter(raw_events, hold_down=hold_down, horizon=horizon)
        advertised = _state_timeline(acted_events, horizon)
        rows.append(
            FlappingRow(
                hold_down=hold_down,
                raw_transitions=len(raw_events),
                acted_transitions=len(acted_events),
                advertised_up_while_down=_overlap_where(actual, advertised, False, True),
                advertised_down_while_up=_overlap_where(actual, advertised, True, False),
            )
        )
    return rows
