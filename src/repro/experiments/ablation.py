"""Ablations on the design choices Section 7 calls out.

Two knobs of PR affect the stretch/overhead trade-off:

* **Embedding quality** — the paper notes that heuristic embeddings of
  non-planar graphs trade extra stretch for tractability ("which may provide
  useful 2-cell embeddings for arbitrary networks at the cost of increased
  stretch").  :func:`embedding_quality_ablation` measures stretch with the
  exact/heuristic/pessimal rotation systems on the same workload.
* **Distance discriminator** — hop count vs. weighted cost (Section 4.3
  offers both).  :func:`dd_kind_ablation` compares them on delivery and
  stretch, plus the resulting DD-bit width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.scheme import PacketRecycling
from repro.embedding.builder import embed
from repro.failures.scenarios import FailureScenario, single_link_failures
from repro.graph.multigraph import Graph
from repro.metrics.ccdf import distribution_summary
from repro.metrics.stretch import stretch_values
from repro.routing.discriminator import DiscriminatorKind, discriminator_bits_required
from repro.experiments.stretch import run_stretch_experiment


@dataclass
class AblationRow:
    """Stretch and delivery figures of one configuration."""

    configuration: str
    faces: int
    genus: int
    delivery_ratio: float
    mean_stretch: float
    p90_stretch: float
    max_stretch: float
    header_bits: int


def embedding_quality_ablation(
    graph: Graph,
    methods: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[FailureScenario]] = None,
    seed: int = 7,
) -> List[AblationRow]:
    """Stretch of PR under embeddings of different quality on the same workload."""
    if methods is None:
        methods = ["auto", "greedy", "adjacency"]
    if scenarios is None:
        scenarios = single_link_failures(graph, only_non_disconnecting=True)

    rows: List[AblationRow] = []
    for method in methods:
        embedding = embed(graph, method=method, seed=seed)
        scheme = PacketRecycling(graph, embedding=embedding)
        result = run_stretch_experiment(graph, scenarios, schemes=[scheme])
        samples = result.samples[scheme.name]
        summary = distribution_summary(stretch_values(samples))
        rows.append(
            AblationRow(
                configuration=f"embedding={method}",
                faces=embedding.number_of_faces,
                genus=embedding.genus,
                delivery_ratio=result.delivery_ratio[scheme.name],
                mean_stretch=summary["mean"],
                p90_stretch=summary["p90"],
                max_stretch=summary["max"],
                header_bits=scheme.header_overhead_bits(),
            )
        )
    return rows


def dd_kind_ablation(
    graph: Graph,
    scenarios: Optional[Sequence[FailureScenario]] = None,
    seed: int = 7,
) -> List[AblationRow]:
    """Hop-count vs. weighted-cost distance discriminators on the same workload."""
    if scenarios is None:
        scenarios = single_link_failures(graph, only_non_disconnecting=True)
    embedding = embed(graph, seed=seed)

    rows: List[AblationRow] = []
    for kind in (DiscriminatorKind.HOP_COUNT, DiscriminatorKind.WEIGHTED_COST):
        scheme = PacketRecycling(graph, embedding=embedding, discriminator_kind=kind)
        result = run_stretch_experiment(graph, scenarios, schemes=[scheme])
        samples = result.samples[scheme.name]
        summary = distribution_summary(stretch_values(samples))
        rows.append(
            AblationRow(
                configuration=f"dd={kind.value}",
                faces=embedding.number_of_faces,
                genus=embedding.genus,
                delivery_ratio=result.delivery_ratio[scheme.name],
                mean_stretch=summary["mean"],
                p90_stretch=summary["p90"],
                max_stretch=summary["max"],
                header_bits=1 + discriminator_bits_required(graph, kind),
            )
        )
    return rows
