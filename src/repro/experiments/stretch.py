"""The Figure 2 stretch experiments.

Each panel of Figure 2 is one call to :func:`figure2_panel`: pick the
topology, generate the failure scenarios (every single link failure for the
top row; sampled non-disconnecting 4/10/16-link combinations for the bottom
row), select the (source, destination) pairs whose failure-free shortest path
is affected and which remain connected, run Re-convergence, FCP and PR on
exactly the same (scenario, pair) workload, and report the stretch CCDF
``P(Stretch > x | path)`` for x = 1..15.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.fcp import FailureCarryingPackets
from repro.baselines.reconvergence import Reconvergence
from repro.core.scheme import PacketRecycling
from repro.errors import ExperimentError
from repro.failures.sampling import sample_multi_link_failures
from repro.failures.scenarios import FailureScenario, all_affecting_pairs, single_link_failures
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.multigraph import Graph
from repro.graph.spcache import engine_for
from repro.metrics.ccdf import ccdf_curve, default_stretch_thresholds, distribution_summary
from repro.metrics.stretch import StretchSample, collect_stretch_samples, stretch_values
from repro.routing.tables import RoutingTables, cached_routing_tables
from repro.topologies.registry import by_name

#: Figure 2 panel definitions: (paper label, topology name, failures per scenario).
FIGURE2_PANELS: Dict[str, Tuple[str, int]] = {
    "2a": ("abilene", 1),
    "2b": ("teleglobe", 1),
    "2c": ("geant", 1),
    "2d": ("abilene", 4),
    "2e": ("teleglobe", 10),
    "2f": ("geant", 16),
}


#: Accepted panel spellings: "2a", "fig2a", "figure2a" (case-insensitive,
#: surrounding whitespace ignored).  An explicit pattern rather than
#: ``lstrip``-chains: ``lstrip("fig")`` strips *characters*, not a prefix,
#: and happily mangles labels like "gif2a" into accidental matches.
_PANEL_PATTERN = re.compile(r"^(?:fig(?:ure)?)?\s*(2[a-f])$", re.IGNORECASE)


def resolve_figure2_panel(panel: str) -> Tuple[str, int]:
    """Normalise a panel label ("2a", "fig2a", "figure2a", ...) to (topology, failures)."""
    match = _PANEL_PATTERN.match(panel.strip())
    if match is None:
        raise ExperimentError(
            f"unknown Figure 2 panel {panel!r}; expected one of {sorted(FIGURE2_PANELS)}"
        )
    return FIGURE2_PANELS[match.group(1).lower()]


@dataclass
class StretchExperimentResult:
    """Everything a Figure 2 panel reports."""

    topology: str
    failures_per_scenario: int
    scenarios: int
    measured_pairs: int
    samples: Dict[str, List[StretchSample]] = field(default_factory=dict)
    ccdf: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    summary: Dict[str, Dict[str, float]] = field(default_factory=dict)
    delivery_ratio: Dict[str, float] = field(default_factory=dict)

    def scheme_names(self) -> List[str]:
        """Scheme names in insertion (presentation) order."""
        return list(self.samples)

    def mean_stretch(self, scheme: str) -> float:
        """Mean stretch of the delivered packets of ``scheme``."""
        return self.summary.get(scheme, {}).get("mean", 0.0)


def default_schemes(
    graph: Graph,
    embedding_seed: Optional[int] = 7,
    cache=None,
    embedding_method: str = "auto",
) -> List[ForwardingScheme]:
    """The three schemes compared in Figure 2, in the paper's legend order.

    ``cache`` is an optional :class:`repro.runner.cache.ArtifactCache` (any
    object with ``get_or_build``); when given, PR's offline-stage embedding
    is served from the content-addressed artifact cache instead of being
    recomputed, so repeated experiments on one topology embed it only once.
    """
    embedding = None
    if cache is not None:
        embedding = cache.get_or_build(
            graph, method=embedding_method, seed=embedding_seed
        )
    return [
        Reconvergence(graph),
        FailureCarryingPackets(graph),
        PacketRecycling(graph, embedding=embedding, embedding_seed=embedding_seed),
    ]


def _pairs_for_scenarios(
    graph: Graph,
    scenarios: Sequence[FailureScenario],
    tables: RoutingTables,
) -> Dict[Tuple[int, ...], List[Tuple[str, str]]]:
    """Affected-and-still-connected pairs for every scenario."""
    engine = engine_for(graph)
    pairs_per_scenario: Dict[Tuple[int, ...], List[Tuple[str, str]]] = {}
    for scenario in scenarios:
        key = tuple(sorted(scenario.failed_links))
        affected = all_affecting_pairs(graph, scenario, tables)
        failed = frozenset(key)
        reachable = [
            (source, destination)
            for source, destination in affected
            if engine.same_component(source, destination, failed)
        ]
        pairs_per_scenario[key] = reachable
    return pairs_per_scenario


def run_stretch_experiment(
    graph: Graph,
    scenarios: Sequence[FailureScenario],
    schemes: Optional[Sequence[ForwardingScheme]] = None,
    thresholds: Optional[Sequence[float]] = None,
) -> StretchExperimentResult:
    """Run the stretch comparison on an explicit list of scenarios."""
    if not scenarios:
        raise ExperimentError("at least one failure scenario is required")
    if schemes is None:
        schemes = default_schemes(graph)
    if thresholds is None:
        thresholds = default_stretch_thresholds()

    # One scenario context per panel: the failure-free tables and the
    # affected/reachable pair sets are computed once and shared by all three
    # schemes (and, through the per-process caches, by later invocations on
    # the same topology).
    baseline_tables = cached_routing_tables(graph)
    pairs_per_scenario = _pairs_for_scenarios(graph, scenarios, baseline_tables)
    scenario_keys = [tuple(sorted(scenario.failed_links)) for scenario in scenarios]
    measured_pairs = sum(len(pairs) for pairs in pairs_per_scenario.values())

    result = StretchExperimentResult(
        topology=graph.name,
        failures_per_scenario=len(scenarios[0].failed_links),
        scenarios=len(scenarios),
        measured_pairs=measured_pairs,
    )
    for scheme in schemes:
        samples = collect_stretch_samples(
            scheme, scenario_keys, pairs_per_scenario, baseline_tables
        )
        values = stretch_values(samples)
        result.samples[scheme.name] = samples
        result.ccdf[scheme.name] = ccdf_curve(values, thresholds)
        result.summary[scheme.name] = distribution_summary(values)
        delivered = sum(1 for sample in samples if sample.delivered)
        result.delivery_ratio[scheme.name] = delivered / len(samples) if samples else 1.0
    return result


def figure2_panel(
    panel: str,
    samples: int = 100,
    seed: int = 1,
    schemes: Optional[Sequence[ForwardingScheme]] = None,
    graph: Optional[Graph] = None,
    cache=None,
) -> StretchExperimentResult:
    """Regenerate one panel of Figure 2.

    ``panel`` is one of ``"2a"``–``"2f"``.  Single-failure panels enumerate
    every link failure; multi-failure panels draw ``samples`` random
    non-disconnecting combinations with the panel's failure count.
    ``cache`` (an artifact cache, see :func:`default_schemes`) reuses the
    topology's offline-stage embedding across panels and invocations.
    """
    topology_name, failures = resolve_figure2_panel(panel)
    if graph is None:
        graph = by_name(topology_name)
    if failures == 1:
        scenarios = single_link_failures(graph, only_non_disconnecting=True)
    else:
        scenarios = sample_multi_link_failures(
            graph, failures=failures, samples=samples, seed=seed, require_connected=True
        )
        if not scenarios:
            raise ExperimentError(
                f"could not sample any non-disconnecting {failures}-failure scenario "
                f"on {topology_name}"
            )
    if schemes is None:
        schemes = default_schemes(graph, cache=cache)
    return run_stretch_experiment(graph, scenarios, schemes)
