"""Command-line interface: ``python -m repro <command> ...``.

The CLI exposes the operational workflow and the headline experiments so that
the reproduction can be driven without writing Python:

* ``topology``  — summarise a built-in or file-based topology.
* ``embed``     — run the offline stage and write the embedding artefact.
* ``tables``    — print one router's cycle following table.
* ``deliver``   — forward one packet under a failure set and show the path.
* ``figure2``   — regenerate one panel of Figure 2.
* ``overhead``  — print the Section 6 overhead comparison.
* ``coverage``  — measure repair coverage under sampled failures.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.api import build_packet_recycling, compare_schemes
from repro.core.coverage import coverage_report
from repro.core.scheme import PacketRecycling
from repro.embedding.genus import self_paired_edge_count
from repro.embedding.serialization import save_embedding
from repro.experiments.asciiplot import ccdf_rows, render_ccdf_plot, render_table
from repro.experiments.overhead import overhead_experiment
from repro.experiments.stretch import figure2_panel
from repro.failures.sampling import sample_multi_link_failures
from repro.failures.scenarios import single_link_failures
from repro.graph.connectivity import is_two_edge_connected
from repro.graph.multigraph import Graph
from repro.graph.shortest_paths import diameter
from repro.metrics.overhead import render_overhead_table
from repro.topologies.parser import load_graph
from repro.topologies.registry import available_topologies, by_name


def _load_topology(spec: str) -> Graph:
    """A registry name (``abilene``) or a path to an edge-list file."""
    if spec.lower() in available_topologies():
        return by_name(spec)
    return load_graph(spec)


def _parse_failed_links(graph: Graph, specs: Sequence[str]) -> List[int]:
    """Failure specs: either an edge id or ``u-v`` endpoint pairs."""
    failed: List[int] = []
    for spec in specs:
        if spec.isdigit():
            failed.append(int(spec))
            continue
        if "-" not in spec:
            raise SystemExit(f"cannot parse failed link {spec!r}; use an edge id or 'u-v'")
        u, v = spec.split("-", 1)
        edge_ids = graph.edge_ids_between(u, v)
        if not edge_ids:
            raise SystemExit(f"no link between {u!r} and {v!r} in {graph.name!r}")
        failed.extend(edge_ids)
    return failed


# ----------------------------------------------------------------------
# sub-commands
# ----------------------------------------------------------------------
def _cmd_topology(args: argparse.Namespace) -> int:
    graph = _load_topology(args.topology)
    print(f"name: {graph.name}")
    print(f"routers: {graph.number_of_nodes()}")
    print(f"links: {graph.number_of_edges()}")
    print(f"hop diameter: {int(diameter(graph, hop_count=True))}")
    print(f"2-edge-connected: {is_two_edge_connected(graph)}")
    if args.links:
        for edge in graph.edges():
            print(f"  [{edge.edge_id}] {edge.u} -- {edge.v}  weight={edge.weight:g}")
    return 0


def _cmd_embed(args: argparse.Namespace) -> int:
    graph = _load_topology(args.topology)
    scheme = build_packet_recycling(graph, embedding_method=args.method)
    embedding = scheme.embedding
    print(f"faces: {embedding.number_of_faces}")
    print(f"genus: {embedding.genus}")
    print(f"self-paired links: {self_paired_edge_count(embedding.rotation)}")
    print(f"header overhead: {scheme.header_overhead_bits()} bits")
    if args.output:
        path = save_embedding(embedding, args.output)
        print(f"embedding written to {path}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    graph = _load_topology(args.topology)
    scheme = build_packet_recycling(graph)
    print(scheme.cycle_tables.table_at(args.router).render())
    return 0


def _cmd_deliver(args: argparse.Namespace) -> int:
    graph = _load_topology(args.topology)
    failed = _parse_failed_links(graph, args.fail or [])
    if args.compare:
        outcomes = compare_schemes(graph, args.source, args.destination, failed)
    else:
        outcomes = {
            "Packet Re-cycling": build_packet_recycling(graph).deliver(
                args.source, args.destination, failed_links=failed
            )
        }
    for name, outcome in outcomes.items():
        status = "delivered" if outcome.delivered else f"LOST ({outcome.drop_reason})"
        print(f"{name}: {status}")
        print(f"  path: {' -> '.join(outcome.path)}")
        print(f"  hops: {outcome.hops}  cost: {outcome.cost:g}")
    return 0 if all(outcome.delivered for outcome in outcomes.values()) else 1


def _cmd_figure2(args: argparse.Namespace) -> int:
    result = figure2_panel(args.panel, samples=args.samples, seed=args.seed)
    headers = ["stretch x"] + sorted(result.ccdf)
    print(f"topology={result.topology} failures/scenario={result.failures_per_scenario} "
          f"scenarios={result.scenarios} pairs={result.measured_pairs}")
    print(render_table(headers, ccdf_rows(result.ccdf)))
    if args.plot:
        print()
        print(render_ccdf_plot(result.ccdf, title=f"P(Stretch > x | path) — Figure {args.panel}"))
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    results = overhead_experiment(args.topologies or None)
    for topology, rows in results.items():
        print(render_overhead_table(topology, rows))
        print()
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    graph = _load_topology(args.topology)
    scheme = PacketRecycling(graph, embedding_seed=0)
    if args.failures <= 1:
        scenarios = [s.failed_links for s in single_link_failures(graph)]
    else:
        scenarios = [
            s.failed_links
            for s in sample_multi_link_failures(
                graph, failures=args.failures, samples=args.samples, seed=args.seed
            )
        ]
    if not scenarios:
        print("no non-disconnecting scenarios could be generated")
        return 1
    report = coverage_report(scheme, scenarios)
    print(report.summary())
    return 0 if report.full_coverage else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Packet Re-cycling (HotNets 2010) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    topology = sub.add_parser("topology", help="summarise a topology")
    topology.add_argument("topology", help="registry name (abilene/teleglobe/geant) or file path")
    topology.add_argument("--links", action="store_true", help="list every link")
    topology.set_defaults(handler=_cmd_topology)

    embed_cmd = sub.add_parser("embed", help="compute the cellular embedding (offline stage)")
    embed_cmd.add_argument("topology")
    embed_cmd.add_argument("--method", default="auto",
                           choices=["auto", "planar", "greedy", "local-search", "adjacency"])
    embed_cmd.add_argument("--output", help="write the embedding artefact to this JSON file")
    embed_cmd.set_defaults(handler=_cmd_embed)

    tables = sub.add_parser("tables", help="print a router's cycle following table")
    tables.add_argument("topology")
    tables.add_argument("router")
    tables.set_defaults(handler=_cmd_tables)

    deliver = sub.add_parser("deliver", help="forward one packet under failures")
    deliver.add_argument("topology")
    deliver.add_argument("source")
    deliver.add_argument("destination")
    deliver.add_argument("--fail", action="append", default=[],
                         help="failed link as an edge id or 'u-v' (repeatable)")
    deliver.add_argument("--compare", action="store_true",
                         help="also run FCP and re-convergence on the same packet")
    deliver.set_defaults(handler=_cmd_deliver)

    figure2 = sub.add_parser("figure2", help="regenerate a Figure 2 panel")
    figure2.add_argument("panel", choices=["2a", "2b", "2c", "2d", "2e", "2f"])
    figure2.add_argument("--samples", type=int, default=50)
    figure2.add_argument("--seed", type=int, default=1)
    figure2.add_argument("--plot", action="store_true", help="also print the ASCII plot")
    figure2.set_defaults(handler=_cmd_figure2)

    overhead = sub.add_parser("overhead", help="print the Section 6 overhead comparison")
    overhead.add_argument("topologies", nargs="*", help="defaults to abilene teleglobe geant")
    overhead.set_defaults(handler=_cmd_overhead)

    coverage = sub.add_parser("coverage", help="measure PR repair coverage")
    coverage.add_argument("topology")
    coverage.add_argument("--failures", type=int, default=1)
    coverage.add_argument("--samples", type=int, default=50)
    coverage.add_argument("--seed", type=int, default=1)
    coverage.set_defaults(handler=_cmd_coverage)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
