"""Command-line interface: ``python -m repro <command> ...``.

The CLI exposes the operational workflow and the headline experiments so that
the reproduction can be driven without writing Python:

* ``topology``  — summarise a built-in or file-based topology.
* ``topologies`` — inspect the topology corpus: ``topologies list``
  tabulates every registered family (legacy ISP maps, parameterized
  synthetic generators, committed Topology Zoo snapshots) and the named
  corpus sets; ``topologies show SPEC`` builds one ``name[:k=v,...]`` spec
  (or file) and summarises it; ``topologies validate --all`` builds the
  whole corpus and checks the invariants campaigns rely on.  Example::

      python -m repro topologies show waxman:size=40,seed=3 --links
* ``embed``     — run the offline stage and write the embedding artefact.
* ``tables``    — print one router's cycle following table.
* ``deliver``   — forward one packet under a failure set and show the path.
* ``figure2``   — regenerate one panel of Figure 2.
* ``overhead``  — print the Section 6 overhead comparison.
* ``coverage``  — measure repair coverage under sampled failures.
* ``scenarios`` — inspect the pluggable failure-scenario model library:
  ``scenarios list`` tabulates the registered models and their parameters,
  ``scenarios preview`` generates a model's scenarios for a topology and
  prints each failure set.  Example::

      python -m repro scenarios preview churn --topology geant \\
          --samples 5 --param process=weibull --param shape=0.8

* ``sweep``     — run a parallel campaign over the full evaluation grid
  (topologies x schemes x discriminators x failure scenarios) through the
  :mod:`repro.runner` subsystem, with a content-addressed offline-stage
  artifact cache (``--cache-dir``), process parallelism (``--workers``), a
  streaming JSONL result store (``--results``) and resume-from-partial
  (``--resume``).  Example::

      python -m repro sweep --topologies abilene geant \\
          --schemes reconvergence fcp pr --failures 4 --samples 20 \\
          --workers 4 --cache-dir .repro-cache --results campaign.jsonl

  ``--topology-set zoo|synthetic|all`` shards the campaign across a whole
  corpus set instead of (or on top of) ``--topologies``; the report then
  leads with a cross-topology summary table (one row per topology x
  scheme).  Example::

      python -m repro sweep --topology-set all --schemes reconvergence fcp \\
          --workers 4 --results corpus.jsonl

  A campaign can also be saved to / loaded from a JSON spec file
  (``--save-spec`` / ``--spec``); a second invocation with the same spec
  hits the artifact cache, and ``--resume`` skips completed cells.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.api import build_packet_recycling, compare_schemes
from repro.core.coverage import coverage_report
from repro.core.scheme import PacketRecycling
from repro.embedding.genus import self_paired_edge_count
from repro.embedding.serialization import save_embedding
from repro.experiments.asciiplot import ccdf_rows, render_ccdf_plot, render_table
from repro.experiments.overhead import overhead_experiment
from repro.experiments.stretch import figure2_panel
from repro.failures.sampling import sample_multi_link_failures
from repro.failures.scenarios import single_link_failures
from repro.graph.connectivity import is_two_edge_connected
from repro.graph.multigraph import Graph
from repro.graph.spcache import cached_diameter
from repro.metrics.overhead import render_overhead_table
from repro.runner import (
    ArtifactCache,
    CampaignSpec,
    ExecutionPolicy,
    ScenarioSpec,
    available_schemes,
    load_topology as _load_topology,
    run_campaign,
)
from repro.runner import aggregate as campaign_aggregate
from repro.runner import faults as fault_harness
from repro.errors import ReproError
from repro.scenarios import available_scenario_models, get_scenario_model, registered_models
from repro.topologies import corpus as topology_corpus
from repro import telemetry


def _parse_failed_links(graph: Graph, specs: Sequence[str]) -> List[int]:
    """Failure specs: either an edge id or ``u-v`` endpoint pairs."""
    failed: List[int] = []
    for spec in specs:
        if spec.isdigit():
            failed.append(int(spec))
            continue
        if "-" not in spec:
            raise SystemExit(f"cannot parse failed link {spec!r}; use an edge id or 'u-v'")
        u, v = spec.split("-", 1)
        edge_ids = graph.edge_ids_between(u, v)
        if not edge_ids:
            raise SystemExit(f"no link between {u!r} and {v!r} in {graph.name!r}")
        failed.extend(edge_ids)
    return failed


# ----------------------------------------------------------------------
# sub-commands
# ----------------------------------------------------------------------
def _print_topology_summary(graph: Graph, links: bool) -> None:
    """The shared body of ``topology`` and ``topologies show``."""
    print(f"routers: {graph.number_of_nodes()}")
    print(f"links: {graph.number_of_edges()}")
    print(f"hop diameter: {int(cached_diameter(graph, hop_count=True))}")
    print(f"2-edge-connected: {is_two_edge_connected(graph)}")
    if links:
        for edge in graph.edges():
            print(f"  [{edge.edge_id}] {edge.u} -- {edge.v}  weight={edge.weight:g}")


def _cmd_topology(args: argparse.Namespace) -> int:
    graph = _load_topology(args.topology)
    print(f"name: {graph.name}")
    _print_topology_summary(graph, args.links)
    return 0


def _cmd_embed(args: argparse.Namespace) -> int:
    graph = _load_topology(args.topology)
    scheme = build_packet_recycling(graph, embedding_method=args.method)
    embedding = scheme.embedding
    print(f"faces: {embedding.number_of_faces}")
    print(f"genus: {embedding.genus}")
    print(f"self-paired links: {self_paired_edge_count(embedding.rotation)}")
    print(f"header overhead: {scheme.header_overhead_bits()} bits")
    if args.output:
        path = save_embedding(embedding, args.output)
        print(f"embedding written to {path}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    graph = _load_topology(args.topology)
    scheme = build_packet_recycling(graph)
    print(scheme.cycle_tables.table_at(args.router).render())
    return 0


def _cmd_deliver(args: argparse.Namespace) -> int:
    graph = _load_topology(args.topology)
    failed = _parse_failed_links(graph, args.fail or [])
    if args.compare:
        outcomes = compare_schemes(graph, args.source, args.destination, failed)
    else:
        outcomes = {
            "Packet Re-cycling": build_packet_recycling(graph).deliver(
                args.source, args.destination, failed_links=failed
            )
        }
    for name, outcome in outcomes.items():
        status = "delivered" if outcome.delivered else f"LOST ({outcome.drop_reason})"
        print(f"{name}: {status}")
        print(f"  path: {' -> '.join(outcome.path)}")
        print(f"  hops: {outcome.hops}  cost: {outcome.cost:g}")
    return 0 if all(outcome.delivered for outcome in outcomes.values()) else 1


def _cmd_figure2(args: argparse.Namespace) -> int:
    cache = ArtifactCache(args.cache_dir) if args.cache_dir else None
    result = figure2_panel(args.panel, samples=args.samples, seed=args.seed, cache=cache)
    headers = ["stretch x"] + sorted(result.ccdf)
    print(f"topology={result.topology} failures/scenario={result.failures_per_scenario} "
          f"scenarios={result.scenarios} pairs={result.measured_pairs}")
    print(render_table(headers, ccdf_rows(result.ccdf)))
    if args.plot:
        print()
        print(render_ccdf_plot(result.ccdf, title=f"P(Stretch > x | path) — Figure {args.panel}"))
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    results = overhead_experiment(args.topologies or None)
    for topology, rows in results.items():
        print(render_overhead_table(topology, rows))
        print()
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    graph = _load_topology(args.topology)
    embedding = None
    if args.cache_dir:
        embedding = ArtifactCache(args.cache_dir).get_or_build(graph, seed=0)
    scheme = PacketRecycling(graph, embedding=embedding, embedding_seed=0)
    if args.failures <= 1:
        scenarios = [s.failed_links for s in single_link_failures(graph)]
    else:
        scenarios = [
            s.failed_links
            for s in sample_multi_link_failures(
                graph, failures=args.failures, samples=args.samples, seed=args.seed
            )
        ]
    if not scenarios:
        print("no non-disconnecting scenarios could be generated")
        return 1
    report = coverage_report(scheme, scenarios)
    print(report.summary())
    return 0 if report.full_coverage else 1


def _parse_param_value(text: str) -> object:
    """Parameter values on the command line: JSON scalar, else a plain string."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_params(pairs: Sequence[str]) -> Dict[str, object]:
    """``k=v`` strings into a parameter dict (values parsed as JSON scalars)."""
    params: Dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"cannot parse parameter {pair!r}; use name=value")
        name, value = pair.split("=", 1)
        params[name.strip()] = _parse_param_value(value.strip())
    return params


def _parse_model_arg(text: str, samples: int) -> ScenarioSpec:
    """A sweep ``--model`` argument: ``name`` or ``name:k=v,k2=v2``."""
    name, _, param_text = text.partition(":")
    params = _parse_params(param_text.split(",")) if param_text else {}
    try:
        # Parameters go through the params field (not keyword splatting) so
        # a user parameter named like a spec field still gets the model's
        # clean unknown-parameter error instead of a TypeError.
        return ScenarioSpec(
            kind="model",
            model=name.strip(),
            samples=samples,
            params=tuple(sorted(params.items())),
        )
    except ReproError as exc:
        raise SystemExit(f"bad --model {text!r}: {exc}")


def _cmd_scenarios(args: argparse.Namespace) -> int:
    if args.action == "list":
        rows = []
        for model in registered_models():
            params = ", ".join(
                f"{param.name}={param.default!r}" for param in model.params
            )
            rows.append([model.name, params or "-", model.summary])
        print(render_table(["model", "parameters (defaults)", "summary"], rows))
        return 0

    # preview: generate and print one model's scenarios for a topology.
    graph = _load_topology(args.topology)
    try:
        model = get_scenario_model(args.model)
        spec = ScenarioSpec(
            kind="model",
            model=args.model,
            samples=args.samples,
            non_disconnecting=not args.allow_disconnecting,
            params=tuple(sorted(_parse_params(args.param).items())),
        )
        scenarios = model.generate(
            graph,
            seed=args.seed,
            samples=spec.samples,
            non_disconnecting=spec.non_disconnecting,
            params=dict(spec.params),
        )
    except ReproError as exc:
        raise SystemExit(str(exc))
    print(
        f"model={model.name} topology={graph.name} seed={args.seed} "
        f"params={dict(spec.params)}"
    )
    if not scenarios:
        print("no scenarios generated (all candidates rejected)")
        return 1
    for index, scenario in enumerate(scenarios):
        print(f"[{index}] ({len(scenario)} links) {scenario.describe(graph)}")
    return 0


def _cmd_topologies(args: argparse.Namespace) -> int:
    if args.action == "list":
        rows = []
        for family in topology_corpus.registered_families():
            params = ", ".join(
                f"{param.name}={param.default!r}" for param in family.params
            )
            rows.append([family.name, family.kind, params or "-", family.summary])
        print(render_table(["topology", "kind", "parameters (defaults)", "summary"], rows))
        print()
        for set_name in topology_corpus.TOPOLOGY_SETS:
            members = topology_corpus.topology_set(set_name)
            print(f"set {set_name!r}: {len(members)} topologies")
        return 0

    if args.action == "show":
        try:
            graph = topology_corpus.build_topology(args.spec)
        except (ReproError, OSError) as exc:
            raise SystemExit(str(exc))
        print(f"spec: {topology_corpus.canonical_topology(args.spec)}")
        _print_topology_summary(graph, args.links)
        return 0

    # validate: every named spec (or a whole corpus set) must build and
    # satisfy the invariants campaigns rely on.
    specs = list(args.specs)
    if args.all:
        specs.extend(topology_corpus.topology_set("all"))
    elif args.set:
        specs.extend(topology_corpus.topology_set(args.set))
    if not specs:
        raise SystemExit("nothing to validate; pass specs, --set NAME or --all")
    failures = 0
    for spec in specs:
        report = topology_corpus.validate_topology(spec)
        print(report.describe())
        if not report.ok:
            failures += 1
    print()
    print(f"{len(specs) - failures}/{len(specs)} topologies valid")
    return 1 if failures else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.runner.bench import (
        check_ft_overhead,
        check_regression,
        check_throughput,
        load_bench,
        run_bench,
        write_bench,
    )

    document = run_bench(quick=args.quick, workers=args.workers)
    rows = [
        [name, f"{value:.3f}s"] for name, value in sorted(document["timings"].items())
    ]
    rows += [
        [name, f"{value:.0f}/s"]
        for name, value in sorted(document.get("throughput", {}).items())
    ]
    print(render_table(["benchmark", "wall"], rows))
    meta = document["meta"]
    print(f"cells={meta['cells']} offline(cold)={meta['offline_cold_s']:.3f}s "
          f"quick={meta['quick']} workers={meta['workers']}")
    print(f"incremental repair: {meta['repair_hits']} trees repaired, "
          f"{meta['repair_fallbacks']} fallbacks to full recompute")
    path = write_bench(document, args.output)
    print(f"timings written to {path}")

    if args.check:
        baseline = load_bench(args.check)
        violations = check_regression(document, baseline, tolerance=args.tolerance)
        if violations:
            print()
            print(f"PERFORMANCE REGRESSION vs {args.check} (tolerance {args.tolerance:.0%}):")
            for violation in violations:
                print(f"  {violation}")
            return 1
        print(f"regression check vs {args.check} passed (tolerance {args.tolerance:.0%})")
        qps_violations = check_throughput(document, baseline, tolerance=args.tolerance)
        if qps_violations:
            print()
            print(f"THROUGHPUT REGRESSION vs {args.check} (tolerance {args.tolerance:.0%}):")
            for violation in qps_violations:
                print(f"  {violation}")
            return 1
        print(f"throughput check vs {args.check} passed (tolerance {args.tolerance:.0%})")
        # Idle fault-layer overhead is gated against this run's own
        # fault-free twins (same machine, same thermal state).
        ft_violations = check_ft_overhead(document)
        if ft_violations:
            print()
            print("FAULT-LAYER OVERHEAD over budget:")
            for violation in ft_violations:
                print(f"  {violation}")
            return 1
        print("idle fault-layer overhead within budget (<3% vs fault-free)")
    return 0


def _resolve_results(path_arg: str):
    """The one results-argument resolver every subcommand shares.

    Classifies the path (SQLite store / checksummed JSONL / telemetry
    manifest) and returns a :class:`repro.store.ResolvedResults`; a missing
    file exits with the error instead of a traceback.
    """
    from repro.store import resolve_results

    try:
        return resolve_results(path_arg)
    except ReproError as exc:
        raise SystemExit(str(exc))


def _cmd_report(args: argparse.Namespace) -> int:
    with _resolve_results(args.results) as resolved:
        try:
            manifest = resolved.manifest()
        except ReproError as exc:
            raise SystemExit(str(exc))
    if args.validate:
        problems = telemetry.validate_manifest(manifest)
        if problems:
            print(f"manifest INVALID ({len(problems)} problems):")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print(f"manifest valid ({manifest.get('schema')})")
        return 0
    print(telemetry.render_report(manifest, slowest=args.slowest))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    with _resolve_results(args.results) as resolved:
        if args.campaigns:
            rows = resolved.campaigns()
            if not rows:
                print(f"{resolved.path} holds no campaigns")
                return 1
            print(render_table(
                ["campaign", "records", "executed", "skipped", "wall", "status"],
                [
                    [
                        str(row.get("campaign_id", "?")),
                        str(row.get("records", "?")),
                        str(row.get("executed", "-")),
                        str(row.get("skipped", "-")),
                        f"{row['elapsed_s']:.2f}s" if "elapsed_s" in row else "-",
                        str(row.get("status", "-")),
                    ]
                    for row in rows
                ],
            ))
            return 0
        try:
            records = resolved.records(
                args.filter or None, limit=args.limit or None
            )
        except ReproError as exc:
            raise SystemExit(str(exc))
    if args.json:
        for record in records:
            print(json.dumps(record, sort_keys=True))
        return 0 if records else 1
    expression = " ".join(args.filter) if args.filter else "(match everything)"
    print(f"{len(records)} records match {expression!r} in {resolved.path}")
    if not records:
        return 1
    print()
    print(render_table(
        ["topology", "scheme", "scenarios", "delivery", "mean stretch",
         "max", "coverage"],
        campaign_aggregate.topology_summary_rows(records),
    ))
    if len(campaign_aggregate.families_in(records)) > 1:
        print()
        print(render_table(
            ["family", "scheme", "scenarios", "delivery", "mean stretch",
             "max", "coverage"],
            campaign_aggregate.family_summary_rows(records),
        ))
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    from repro.store import migrate as migrate_results

    try:
        summary = migrate_results(args.source, args.destination, args.campaign)
    except ReproError as exc:
        raise SystemExit(str(exc))
    print(f"{summary['direction']}: campaign {summary['campaign_id']}, "
          f"{summary['records']} records -> {args.destination}")
    if summary.get("manifest"):
        print(f"telemetry manifest: {summary['manifest']}"
              if isinstance(summary["manifest"], str)
              else "telemetry manifest: imported into store")
    if summary.get("quarantine"):
        print(f"quarantine sidecar: {summary['quarantine']}")
    elif summary.get("quarantined"):
        print(f"quarantine entries imported: {summary['quarantined']}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.store.serve import ServeSession, jobs_path_for, serve_forever

    jobs_path = None if args.no_jobs else (args.jobs or jobs_path_for(args.socket))
    session = ServeSession(
        cache_dir=args.cache_dir,
        jobs_path=jobs_path,
        max_queued_jobs=args.max_jobs,
    )
    for topology in args.warm or []:
        response = session.handle(
            {"op": "warm", "topology": topology, "schemes": args.schemes}
        )
        if not response.get("ok"):
            raise SystemExit(f"cannot warm {topology!r}: {response.get('error')}")
        print(f"warm: {response['topology']} "
              f"({response['nodes']} routers, {response['edges']} links, "
              f"{response['schemes_warm']} schemes)")
    recovered = session.recover_jobs()
    if recovered:
        print(f"recovered {len(recovered)} interrupted job(s): "
              + ", ".join(recovered))
    if jobs_path is not None:
        print(f"job journal: {jobs_path}")
    print(f"serving on {args.socket} "
          f"(line-delimited JSON requests; op=shutdown or ctrl-c stops)")
    try:
        served = serve_forever(
            args.socket,
            session,
            max_inflight=args.max_inflight,
            deadline_s=args.deadline if args.deadline > 0 else None,
        )
    except KeyboardInterrupt:
        served = session.requests_served
        session.close()
        print()
    print(f"served {served} requests")
    return 0


def _sweep_spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    """Build the campaign spec a ``sweep`` invocation describes."""
    if args.spec:
        return CampaignSpec.load(args.spec)
    scenarios = []
    if not args.skip_single:
        scenarios.append(ScenarioSpec(kind="single-link"))
    for failures in args.failures or []:
        scenarios.append(
            ScenarioSpec(kind="multi-link", failures=failures, samples=args.samples)
        )
    if args.node:
        scenarios.append(ScenarioSpec(kind="node"))
    for model_arg in args.model or []:
        scenarios.append(_parse_model_arg(model_arg, args.samples))
    if not scenarios:
        raise SystemExit(
            "no scenarios selected; drop --skip-single or add --failures/--node/--model"
        )
    topologies = list(args.topologies or [])
    if args.topology_set:
        topologies.extend(topology_corpus.topology_set(args.topology_set))
    if not topologies:
        topologies = ["abilene", "geant"]
    try:
        return CampaignSpec(
            topologies=tuple(topologies),
            schemes=tuple(args.schemes),
            discriminators=tuple(args.discriminators),
            scenarios=tuple(scenarios),
            seed=args.seed,
            embedding_method=args.embedding_method,
            embedding_seed=args.embedding_seed,
            coverage=args.coverage,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = _sweep_spec_from_args(args)
    if args.resume and not args.results:
        raise SystemExit("--resume needs --results to know which cells are done")
    if args.no_telemetry:
        telemetry.set_enabled(False)
    try:
        policy = ExecutionPolicy(
            max_retries=args.max_retries,
            cell_timeout=args.cell_timeout,
            on_error=args.on_error,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))
    if args.inject is not None:
        # The environment variable is the cross-process contract: worker
        # processes re-read it in their initializer, so --inject reaches
        # them however the pool starts.
        try:
            fault_harness.parse_plan(args.inject)
        except ReproError as exc:
            raise SystemExit(str(exc))
        os.environ[fault_harness.ENV_VAR] = args.inject
        fault_harness.reload_from_env()
    for name in spec.topologies:
        try:
            _load_topology(name)
        except Exception as exc:
            raise SystemExit(f"cannot load topology {name!r}: {exc}")
    if args.save_spec:
        path = spec.save(args.save_spec)
        print(f"campaign spec written to {path}")

    def progress(cell, record, done, total):
        if not args.quiet:
            elapsed = record["meta"]["elapsed_s"]
            print(f"[{done}/{total}] {cell.label}  ({elapsed:.2f}s)")

    result = run_campaign(
        spec,
        workers=args.workers,
        cache_dir=args.cache_dir,
        results=args.results,
        resume=args.resume,
        progress=progress,
        policy=policy,
    )

    print()
    print(f"campaign {spec.spec_hash()}: {result.executed} cells executed, "
          f"{result.skipped} reused, {result.elapsed_s:.2f}s wall, "
          f"offline stage {result.offline_seconds():.2f}s")
    if result.fault_counters:
        print("fault counters: "
              + ", ".join(f"{name.split('/', 1)[1]}={value}"
                          for name, value in sorted(result.fault_counters.items())))
    if result.quarantined:
        print()
        print(f"=== quarantined cells ({len(result.quarantined)}) ===")
        print(render_table(
            ["cell", "topology", "scheme", "scenario", "attempts", "error"],
            [
                [
                    entry["cell_id"],
                    entry["topology"],
                    entry["scheme"],
                    entry["scenario_family"],
                    str(entry["attempts"]),
                    f"{entry['error_type']}: {entry['error'][:60]}",
                ]
                for entry in result.quarantined
            ],
        ))
        if result.quarantine_path is not None:
            print(f"quarantine sidecar: {result.quarantine_path}")
        elif result.store is not None:
            print(f"quarantine entries recorded in {result.results_path}")
    stats = result.cache_stats()
    if args.cache_dir:
        print(f"artifact cache: {stats['hits']} hits, {stats['misses']} misses "
              f"({args.cache_dir})")
    if result.store is not None:
        print(f"results store: {result.results_path} "
              f"(campaign {spec.spec_hash()}; query with: "
              f"repro query {result.results_path} campaign:last1)")
    elif result.results_path is not None:
        print(f"results: {result.results_path}")
    engine_counters = result.engine_counters()
    if engine_counters:
        # Merged across every worker through the per-cell snapshots — the
        # campaign-wide totals a per-process aggregate_cache_info() misses.
        print("engine counters (all workers): "
              + ", ".join(f"{name}={value}"
                          for name, value in sorted(engine_counters.items())))
    if result.telemetry_path is not None:
        print(f"telemetry manifest: {result.telemetry_path}")
    elif result.store is not None:
        print(f"telemetry manifest recorded in {result.results_path} "
              f"(repro report {result.results_path})")
    if args.slowest:
        manifest = result.telemetry(slowest=args.slowest)
        rows = telemetry.report.slowest_rows(manifest, args.slowest)
        if rows:
            print()
            print(f"=== slowest cells (top {len(rows)}) ===")
            print(render_table(
                ["cell", "topology", "scheme", "scenario", "elapsed",
                 "dominant phase"],
                rows,
            ))

    # A corpus-scale sweep would print dozens of per-topology sections;
    # beyond a few topologies the cross-topology summary table carries the
    # report instead (pass --plot to force the detailed sections).
    detailed = len(spec.topologies) <= 3 or args.plot
    if detailed:
        for topology in spec.topologies:
            print()
            print(f"=== {topology} ===")
            curves = result.merged_ccdf(topology)
            if curves:
                headers = ["stretch x"] + sorted(curves)
                print(render_table(headers, ccdf_rows(curves)))
                if args.plot:
                    print()
                    print(render_ccdf_plot(curves, title=f"P(Stretch > x | path) — {topology}"))
            print()
            print(render_table(
                ["scheme", "delivery", "mean stretch", "max", "coverage"],
                campaign_aggregate.summary_rows(result.records, topology),
            ))
            if len(campaign_aggregate.families_in(result.records)) > 1:
                print()
                print(render_table(
                    ["family", "scheme", "scenarios", "delivery", "mean stretch",
                     "max", "coverage"],
                    campaign_aggregate.family_summary_rows(result.records, topology),
                ))
    if len(spec.topologies) > 1:
        print()
        print(f"=== corpus summary ({len(spec.topologies)} topologies) ===")
        print(render_table(
            ["topology", "scheme", "scenarios", "delivery", "mean stretch",
             "max", "coverage"],
            result.topology_summary(),
        ))
    if detailed:
        overheads = result.overhead_rows()
        for topology in spec.topologies:
            rows = overheads.get(topology)
            if rows:
                print()
                print(render_overhead_table(topology, rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Packet Re-cycling (HotNets 2010) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    topology = sub.add_parser("topology", help="summarise a topology")
    topology.add_argument("topology", help="registry name (abilene/teleglobe/geant) or file path")
    topology.add_argument("--links", action="store_true", help="list every link")
    topology.set_defaults(handler=_cmd_topology)

    topologies_cmd = sub.add_parser(
        "topologies",
        help="inspect the topology corpus (families, zoo snapshots, sets)",
    )
    topologies_sub = topologies_cmd.add_subparsers(dest="action", required=True)
    topologies_list = topologies_sub.add_parser(
        "list", help="tabulate the registered topology families and corpus sets"
    )
    topologies_list.set_defaults(handler=_cmd_topologies)
    topologies_show = topologies_sub.add_parser(
        "show", help="build one corpus spec or file and summarise it"
    )
    topologies_show.add_argument(
        "spec", help="topology spec (name[:k=v,...]) or file path"
    )
    topologies_show.add_argument("--links", action="store_true", help="list every link")
    topologies_show.set_defaults(handler=_cmd_topologies)
    topologies_validate = topologies_sub.add_parser(
        "validate", help="build corpus entries and check campaign invariants"
    )
    topologies_validate.add_argument(
        "specs", nargs="*", help="topology specs or file paths to validate"
    )
    topologies_validate.add_argument(
        "--set", choices=list(topology_corpus.TOPOLOGY_SETS),
        help="also validate every member of this corpus set",
    )
    topologies_validate.add_argument(
        "--all", action="store_true", help="validate the whole corpus (set 'all')"
    )
    topologies_validate.set_defaults(handler=_cmd_topologies)

    embed_cmd = sub.add_parser("embed", help="compute the cellular embedding (offline stage)")
    embed_cmd.add_argument("topology")
    embed_cmd.add_argument("--method", default="auto",
                           choices=["auto", "planar", "greedy", "local-search", "adjacency"])
    embed_cmd.add_argument("--output", help="write the embedding artefact to this JSON file")
    embed_cmd.set_defaults(handler=_cmd_embed)

    tables = sub.add_parser("tables", help="print a router's cycle following table")
    tables.add_argument("topology")
    tables.add_argument("router")
    tables.set_defaults(handler=_cmd_tables)

    deliver = sub.add_parser("deliver", help="forward one packet under failures")
    deliver.add_argument("topology")
    deliver.add_argument("source")
    deliver.add_argument("destination")
    deliver.add_argument("--fail", action="append", default=[],
                         help="failed link as an edge id or 'u-v' (repeatable)")
    deliver.add_argument("--compare", action="store_true",
                         help="also run FCP and re-convergence on the same packet")
    deliver.set_defaults(handler=_cmd_deliver)

    figure2 = sub.add_parser("figure2", help="regenerate a Figure 2 panel")
    figure2.add_argument("panel", choices=["2a", "2b", "2c", "2d", "2e", "2f"])
    figure2.add_argument("--samples", type=int, default=50)
    figure2.add_argument("--seed", type=int, default=1)
    figure2.add_argument("--plot", action="store_true", help="also print the ASCII plot")
    figure2.add_argument("--cache-dir", help="offline-stage artifact cache directory")
    figure2.set_defaults(handler=_cmd_figure2)

    overhead = sub.add_parser("overhead", help="print the Section 6 overhead comparison")
    overhead.add_argument("topologies", nargs="*", help="defaults to abilene teleglobe geant")
    overhead.set_defaults(handler=_cmd_overhead)

    coverage = sub.add_parser("coverage", help="measure PR repair coverage")
    coverage.add_argument("topology")
    coverage.add_argument("--failures", type=int, default=1)
    coverage.add_argument("--samples", type=int, default=50)
    coverage.add_argument("--seed", type=int, default=1)
    coverage.add_argument("--cache-dir", help="offline-stage artifact cache directory")
    coverage.set_defaults(handler=_cmd_coverage)

    scenarios_cmd = sub.add_parser(
        "scenarios",
        help="inspect the pluggable failure-scenario model library",
    )
    scenarios_sub = scenarios_cmd.add_subparsers(dest="action", required=True)
    scenarios_list = scenarios_sub.add_parser(
        "list", help="tabulate the registered scenario models"
    )
    scenarios_list.set_defaults(handler=_cmd_scenarios)
    scenarios_preview = scenarios_sub.add_parser(
        "preview", help="generate and print one model's scenarios"
    )
    scenarios_preview.add_argument("model",
                                   help=f"registered model "
                                        f"({', '.join(available_scenario_models())})")
    scenarios_preview.add_argument("--topology", default="abilene",
                                   help="registry name or edge-list file path")
    scenarios_preview.add_argument("--samples", type=int, default=5)
    scenarios_preview.add_argument("--seed", type=int, default=1)
    scenarios_preview.add_argument("--param", action="append", default=[],
                                   metavar="NAME=VALUE",
                                   help="model parameter override (repeatable)")
    scenarios_preview.add_argument("--allow-disconnecting", action="store_true",
                                   help="keep scenarios that disconnect the "
                                        "surviving network")
    scenarios_preview.set_defaults(handler=_cmd_scenarios)

    bench = sub.add_parser(
        "bench",
        help="benchmark the sweep hot path and write BENCH_*.json timings",
    )
    bench.add_argument("--quick", action="store_true",
                       help="smaller workloads (the CI regression step uses this)")
    bench.add_argument("--workers", type=int, default=2,
                       help="worker processes for the parallel sweep phase")
    bench.add_argument("--output", default="BENCH_sweep.json",
                       help="JSON file the timings are written to")
    bench.add_argument("--check", metavar="BASELINE",
                       help="compare against a baseline JSON and fail on regression")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       help="allowed fractional slowdown vs the baseline (default 0.25)")
    bench.set_defaults(handler=_cmd_bench)

    sweep = sub.add_parser(
        "sweep",
        help="run a parallel experiment campaign over the evaluation grid",
    )
    sweep.add_argument("--topologies", nargs="+", default=None,
                       help="corpus specs (name[:k=v,...]) or topology file "
                            "paths; defaults to abilene geant unless "
                            "--topology-set is given")
    sweep.add_argument("--topology-set", choices=list(topology_corpus.TOPOLOGY_SETS),
                       help="also sweep a whole corpus set (zoo snapshots, "
                            "seeded synthetic instances, or both)")
    sweep.add_argument("--schemes", nargs="+", default=["reconvergence", "fcp", "pr"],
                       choices=available_schemes(), metavar="SCHEME",
                       help=f"schemes to sweep (choices: {', '.join(available_schemes())})")
    sweep.add_argument("--discriminators", nargs="+", default=["hop-count"],
                       choices=["hop-count", "weighted-cost"])
    sweep.add_argument("--skip-single", action="store_true",
                       help="do not include the single-link-failure scenario set")
    sweep.add_argument("--failures", type=int, action="append",
                       help="add a multi-link scenario set with this many "
                            "simultaneous failures (repeatable)")
    sweep.add_argument("--node", action="store_true",
                       help="add the single-node-failure scenario set")
    sweep.add_argument("--model", action="append", metavar="NAME[:K=V,...]",
                       help="add a scenario-model set, e.g. srlg or "
                            "churn:process=weibull,mean_down=20 (repeatable; "
                            f"models: {', '.join(available_scenario_models())})")
    sweep.add_argument("--samples", type=int, default=10,
                       help="scenarios per multi-link or --model scenario set")
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--coverage", choices=["affected", "full"], default="affected",
                       help="delivery accounting: affected pairs only (Figure 2) "
                            "or every still-connected pair (repair coverage)")
    sweep.add_argument("--embedding-method", default="auto",
                       choices=["auto", "planar", "greedy", "local-search", "adjacency"])
    sweep.add_argument("--embedding-seed", type=int, default=0)
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (0 = one per CPU)")
    sweep.add_argument("--cache-dir", default=".repro-cache",
                       help="offline-stage artifact cache directory")
    sweep.add_argument("--results",
                       help="results backend to stream cell records into, "
                            "auto-detected by suffix: a .sqlite/.sqlite3/.db "
                            "path lands the campaign in the queryable store, "
                            "anything else streams checksummed JSONL")
    sweep.add_argument("--resume", action="store_true",
                       help="skip cells already recorded in --results")
    sweep.add_argument("--spec", help="load the campaign spec from this JSON file "
                                      "(overrides the grid flags)")
    sweep.add_argument("--save-spec", help="write the campaign spec to this JSON file")
    sweep.add_argument("--plot", action="store_true", help="also print ASCII CCDF plots")
    sweep.add_argument("--quiet", action="store_true", help="suppress per-cell progress")
    sweep.add_argument("--max-retries", type=int, default=0, metavar="N",
                       help="re-attempt a failing/timed-out/crashed cell up to N times "
                            "with exponential backoff (deterministic per-cell jitter)")
    sweep.add_argument("--cell-timeout", type=float, default=None, metavar="SECONDS",
                       help="per-cell wall-clock timeout; a cell exceeding it fails "
                            "(and retries under --max-retries)")
    sweep.add_argument("--on-error", choices=["fail", "quarantine"], default="fail",
                       help="what to do when a cell exhausts its retries: abort the "
                            "campaign after draining (fail, default) or record the "
                            "cell in the campaign.quarantine.jsonl sidecar and keep "
                            "going (quarantine)")
    sweep.add_argument("--inject", metavar="PLAN",
                       help="arm the deterministic fault-injection harness (testing "
                            "only); same grammar as the REPRO_FAULTS environment "
                            "variable, e.g. 'site=cell-body,kind=exception,p=0.2,seed=1'")
    sweep.add_argument("--slowest", type=int, default=0, metavar="N",
                       help="print the N slowest cells with their phase breakdown")
    sweep.add_argument("--no-telemetry", action="store_true",
                       help="disable telemetry collection (payloads are "
                            "byte-identical either way)")
    sweep.set_defaults(handler=_cmd_sweep)

    report = sub.add_parser(
        "report",
        help="query a campaign's telemetry manifest (phase times, cache "
             "efficiency, slowest cells)",
    )
    report.add_argument("results",
                        help="a results store (.sqlite — the latest campaign's "
                             "manifest), campaign results JSONL (its "
                             ".telemetry.json sidecar is used) or a manifest "
                             "file directly")
    report.add_argument("--slowest", type=int, default=10, metavar="N",
                        help="rows in the slowest-cells table (default 10)")
    report.add_argument("--validate", action="store_true",
                        help="only validate the manifest schema; exit 1 on "
                             "problems (the CI smoke gate)")
    report.set_defaults(handler=_cmd_report)

    query = sub.add_parser(
        "query",
        help="filter records out of a results store or JSONL file "
             "(scheme=pr topology~zoo campaign:last10)",
    )
    query.add_argument("results",
                       help="results store (.sqlite) or campaign JSONL file")
    query.add_argument("filter", nargs="*", metavar="CLAUSE",
                       help="filter clauses: field=value, field!=value, "
                            "field~value (substring) over topology/scheme/"
                            "discriminator/family/seed/cell, plus "
                            "campaign:lastN | campaign:HASH | campaign:all")
    query.add_argument("--limit", type=int, default=0, metavar="N",
                       help="return at most N records (0 = unlimited)")
    query.add_argument("--json", action="store_true",
                       help="print matching records as JSON lines instead of "
                            "summary tables")
    query.add_argument("--campaigns", action="store_true",
                       help="list the campaigns in the store instead of "
                            "querying records")
    query.set_defaults(handler=_cmd_query)

    migrate_cmd = sub.add_parser(
        "migrate",
        help="convert campaign results between JSONL and the SQLite store "
             "(byte-identical round trips, sidecars included)",
    )
    migrate_cmd.add_argument("source", help="results file to convert from")
    migrate_cmd.add_argument("destination",
                             help="results file to convert into; direction is "
                                  "inferred from the two suffixes")
    migrate_cmd.add_argument("--campaign", metavar="ID",
                             help="campaign id (or unique prefix) to export "
                                  "from a store / id to import under "
                                  "(default: latest / derived)")
    migrate_cmd.set_defaults(handler=_cmd_migrate)

    serve = sub.add_parser(
        "serve",
        help="resident query loop: warm engines answering deliver/stretch/"
             "query/submit requests over a Unix socket",
    )
    serve.add_argument("--socket", default=".repro-serve.sock",
                       help="Unix socket path to listen on "
                            "(default .repro-serve.sock)")
    serve.add_argument("--cache-dir", default=".repro-cache",
                       help="offline-stage artifact cache directory")
    serve.add_argument("--warm", nargs="+", metavar="TOPOLOGY",
                       help="pre-warm these topologies before serving")
    serve.add_argument("--schemes", nargs="+", default=["pr"],
                       choices=available_schemes(), metavar="SCHEME",
                       help="schemes to pre-build for each --warm topology")
    serve.add_argument("--jobs", metavar="PATH",
                       help="job-journal SQLite path for async submit "
                            "(default: derived from --socket, e.g. "
                            ".repro-serve.jobs.sqlite)")
    serve.add_argument("--no-jobs", action="store_true",
                       help="disable the job journal; submit runs "
                            "synchronously in the request thread")
    serve.add_argument("--max-jobs", type=int, default=64, metavar="N",
                       help="queued+running jobs before submit sheds "
                            "with Overloaded (default 64)")
    serve.add_argument("--max-inflight", type=int, default=8, metavar="N",
                       help="concurrent requests before load-shedding "
                            "with Overloaded (default 8)")
    serve.add_argument("--deadline", type=float, default=30.0, metavar="S",
                       help="per-request deadline in seconds; 0 disables "
                            "(default 30)")
    serve.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
