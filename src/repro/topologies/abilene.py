"""The Abilene (Internet2) backbone, as used in the paper's Figure 2(a)/(d).

Abilene's research backbone connected 11 points of presence with 14 OC-192
links; the node set and link set below are the standard published ones
(the paper's reference [21]).  Link weights are the great-circle distances
between the PoP cities rounded to kilometres, which is the conventional
choice when the original IGP metrics are not needed; a unit-weight variant
is available for hop-count experiments.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.multigraph import Graph

#: PoP cities with (latitude, longitude), used to derive distance weights.
ABILENE_COORDINATES: Dict[str, Tuple[float, float]] = {
    "Seattle": (47.61, -122.33),
    "Sunnyvale": (37.37, -122.04),
    "LosAngeles": (34.05, -118.24),
    "Denver": (39.74, -104.99),
    "KansasCity": (39.10, -94.58),
    "Houston": (29.76, -95.37),
    "Chicago": (41.88, -87.63),
    "Indianapolis": (39.77, -86.16),
    "Atlanta": (33.75, -84.39),
    "Washington": (38.91, -77.04),
    "NewYork": (40.71, -74.01),
}

#: The 14 Abilene backbone links.
ABILENE_LINKS: List[Tuple[str, str]] = [
    ("Seattle", "Sunnyvale"),
    ("Seattle", "Denver"),
    ("Sunnyvale", "LosAngeles"),
    ("Sunnyvale", "Denver"),
    ("LosAngeles", "Houston"),
    ("Denver", "KansasCity"),
    ("KansasCity", "Houston"),
    ("KansasCity", "Indianapolis"),
    ("Houston", "Atlanta"),
    ("Indianapolis", "Chicago"),
    ("Indianapolis", "Atlanta"),
    ("Chicago", "NewYork"),
    ("Atlanta", "Washington"),
    ("NewYork", "Washington"),
]


def great_circle_km(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Great-circle distance in kilometres between two (lat, lon) points."""
    import math

    lat1, lon1 = map(math.radians, a)
    lat2, lon2 = map(math.radians, b)
    delta_lat = lat2 - lat1
    delta_lon = lon2 - lon1
    haversine = (
        math.sin(delta_lat / 2) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(delta_lon / 2) ** 2
    )
    earth_radius_km = 6371.0
    return 2 * earth_radius_km * math.asin(math.sqrt(haversine))


def abilene(unit_weights: bool = False) -> Graph:
    """The 11-node / 14-link Abilene backbone.

    With ``unit_weights=True`` every link costs 1 (pure hop-count routing);
    otherwise links are weighted by the great-circle distance between their
    endpoint cities, rounded to whole kilometres.
    """
    graph = Graph("abilene")
    for city in ABILENE_COORDINATES:
        graph.ensure_node(city)
    for u, v in ABILENE_LINKS:
        if unit_weights:
            weight = 1.0
        else:
            weight = round(great_circle_km(ABILENE_COORDINATES[u], ABILENE_COORDINATES[v]))
        graph.add_edge(u, v, max(1.0, weight))
    return graph
