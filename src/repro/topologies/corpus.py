"""Topology corpus: parameterized families, zoo snapshots and campaign sets.

The paper evaluates on three ISP topologies; production-scale sweeps need a
*corpus* — dozens of real and synthetic networks addressable by name from a
campaign spec.  This module is the registry behind that corpus:

* **Families** (:class:`TopologyFamily`) are named topology constructors
  with *declared* parameters, mirroring the scenario-model contract of
  :mod:`repro.scenarios.base`: unknown parameter names and uncoercible
  values are rejected at spec-construction time, and resolved parameters
  always contain every declared parameter, so two spellings of the same
  instance canonicalise to the same string — and therefore to the same
  campaign cell ids and artifact-cache keys.
* **Specs** (:class:`TopologySpec`) are parsed from ``name[:k=v,...]``
  strings (``waxman:size=40,seed=3``), exactly the syntax campaign scenario
  models use.  :attr:`TopologySpec.canonical` is the normal form — family
  lowercased, every parameter present, name-sorted.
* **Zoo snapshots** are GraphML / weighted edge-list files committed under
  ``src/repro/topologies/data/`` (Topology Zoo formats); each file becomes a
  parameter-free family named by its stem.
* **Sets** (:func:`topology_set`) bundle the corpus for campaign sharding:
  ``"zoo"`` (every committed snapshot), ``"synthetic"`` (a curated, seeded
  slice of the generator families) and ``"all"`` (both) — what
  ``python -m repro sweep --topology-set`` expands.

Every family build is deterministic: synthetic generators are pure
functions of their (seeded) parameters and zoo loads are pure functions of
the committed file, so a corpus campaign is reproducible cell-for-cell
across processes and machines.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import TopologyError
from repro.graph.connectivity import is_connected, is_two_edge_connected
from repro.graph.multigraph import Graph
from repro.topologies import generators
from repro.topologies.abilene import abilene
from repro.topologies.example import example_fig1
from repro.topologies.geant import geant
from repro.topologies.graphml import load_graphml
from repro.topologies.parser import load_graph
from repro.topologies.teleglobe import teleglobe

#: Parameter values are JSON scalars so that specs round-trip losslessly
#: through campaign JSON files and JSONL result stores.
ParamValue = Union[int, float, str, bool]

#: Directory of the committed zoo snapshots.
DATA_DIR = Path(__file__).resolve().parent / "data"

#: File suffixes recognised as topology files, and their loaders.
TOPOLOGY_FILE_SUFFIXES = (".graphml", ".edges", ".topo", ".txt")

_FAMILY_KINDS = ("legacy", "synthetic", "zoo")


# ----------------------------------------------------------------------
# declared parameters
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TopologyParam:
    """One declared parameter of a topology family.

    The default's type doubles as the parameter's type; overrides are
    coerced to it and anything that does not coerce is rejected with a
    :class:`~repro.errors.TopologyError`.
    """

    name: str
    default: ParamValue
    doc: str = ""

    def coerce(self, value: object) -> ParamValue:
        """Coerce ``value`` to this parameter's type or raise ``TopologyError``."""
        kind = type(self.default)
        try:
            if kind is bool:
                if isinstance(value, bool):
                    return value
                if isinstance(value, str) and value.lower() in ("true", "false"):
                    return value.lower() == "true"
                raise ValueError(value)
            if kind is int:
                if isinstance(value, bool):
                    raise ValueError(value)
                coerced = int(str(value)) if isinstance(value, str) else int(value)
                if isinstance(value, float) and value != coerced:
                    raise ValueError(value)
                return coerced
            if kind is float:
                if isinstance(value, bool):
                    raise ValueError(value)
                coerced = float(value)
                if not math.isfinite(coerced):
                    raise ValueError(value)
                return coerced
            return str(value)
        except (TypeError, ValueError, OverflowError):
            raise TopologyError(
                f"topology parameter {self.name!r} expects a {kind.__name__}, "
                f"got {value!r}"
            ) from None


# ----------------------------------------------------------------------
# families
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TopologyFamily:
    """A named, parameterized topology constructor."""

    name: str
    kind: str
    summary: str
    build: Callable[..., Graph]
    params: Tuple[TopologyParam, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _FAMILY_KINDS:
            raise TopologyError(
                f"unknown family kind {self.kind!r}; expected one of {_FAMILY_KINDS}"
            )

    def param(self, name: str) -> TopologyParam:
        for param in self.params:
            if param.name == name:
                return param
        raise TopologyError(
            f"topology family {self.name!r} has no parameter {name!r}"
        )

    def default_params(self) -> Dict[str, ParamValue]:
        """The fully-resolved defaults, in declaration order."""
        return {param.name: param.default for param in self.params}

    def resolve_params(self, overrides: Mapping[str, object]) -> Dict[str, ParamValue]:
        """Merge ``overrides`` into the defaults, rejecting unknown names."""
        known = {param.name for param in self.params}
        unknown = sorted(set(overrides) - known)
        if unknown:
            if not known:
                raise TopologyError(
                    f"topology {self.name!r} takes no parameters, got {unknown!r}"
                )
            raise TopologyError(
                f"unknown parameters {unknown!r} for topology family "
                f"{self.name!r}; declared: {sorted(known)}"
            )
        resolved = self.default_params()
        for name, value in overrides.items():
            resolved[name] = self.param(name).coerce(value)
        return resolved


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------
def _format_value(value: ParamValue) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _parse_value(text: str) -> object:
    """A ``k=v`` value: JSON scalar when it parses, plain string otherwise."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


@dataclass(frozen=True)
class TopologySpec:
    """One fully-resolved topology instance of the corpus.

    ``params`` is canonical: every declared parameter present (defaults
    resolved), name-sorted — the invariant that makes :attr:`canonical`
    stable across spellings and therefore safe inside campaign cell ids and
    content-addressed cache keys.
    """

    family: str
    params: Tuple[Tuple[str, ParamValue], ...] = ()

    @property
    def canonical(self) -> str:
        """The normal-form spec string (``name`` or ``name:k=v,...``)."""
        if not self.params:
            return self.family
        rendered = ",".join(
            f"{name}={_format_value(value)}" for name, value in self.params
        )
        return f"{self.family}:{rendered}"

    def build(self) -> Graph:
        """Construct the topology; the graph is named by :attr:`canonical`."""
        graph = get_family(self.family).build(**dict(self.params))
        graph.name = self.canonical
        return graph


def parse_topology_spec(text: str) -> TopologySpec:
    """Parse ``name[:k=v,...]`` into a canonical :class:`TopologySpec`.

    Raises :class:`~repro.errors.TopologyError` for unknown family names,
    unknown parameters and uncoercible values.
    """
    head, _, param_text = text.partition(":")
    family = get_family(head.strip())
    overrides: Dict[str, object] = {}
    if param_text.strip():
        for pair in param_text.split(","):
            if "=" not in pair:
                raise TopologyError(
                    f"cannot parse parameter {pair.strip()!r} in topology spec "
                    f"{text!r}; use name=value"
                )
            name, value = pair.split("=", 1)
            overrides[name.strip()] = _parse_value(value.strip())
    resolved = family.resolve_params(overrides)
    return TopologySpec(family.name, tuple(sorted(resolved.items())))


def try_parse_spec(text: str) -> Optional[TopologySpec]:
    """Parse ``text`` when its family name is registered, else ``None``.

    A known family with bad parameters still raises — a typo in the params
    of a real family must fail loudly, not fall through to file loading.
    """
    head = text.partition(":")[0].strip().lower()
    if head not in _FAMILIES:
        return None
    return parse_topology_spec(text)


def canonical_topology(text: str) -> str:
    """Normalise a campaign topology entry.

    Corpus specs canonicalise (family lowercased, params resolved and
    sorted); anything else — file paths — passes through unchanged.
    """
    spec = try_parse_spec(text)
    return spec.canonical if spec is not None else text


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_FAMILIES: Dict[str, TopologyFamily] = {}


def register_family(family: TopologyFamily, replace: bool = False) -> TopologyFamily:
    """Register a topology family under its (lowercased) name."""
    key = family.name.lower()
    if key != family.name:
        raise TopologyError(
            f"topology family names must be lowercase, got {family.name!r}"
        )
    if not replace and key in _FAMILIES:
        raise TopologyError(f"topology family {key!r} is already registered")
    _FAMILIES[key] = family
    return family


def family_names(kind: Optional[str] = None) -> List[str]:
    """Sorted names of the registered families (optionally one kind)."""
    return sorted(
        name
        for name, family in _FAMILIES.items()
        if kind is None or family.kind == kind
    )


def registered_families(kind: Optional[str] = None) -> List[TopologyFamily]:
    """The registered families sorted by name (optionally one kind)."""
    return [_FAMILIES[name] for name in family_names(kind)]


def get_family(name: str) -> TopologyFamily:
    """Look a family up case-insensitively, reporting the attempted name."""
    key = name.strip().lower()
    family = _FAMILIES.get(key)
    if family is None:
        raise TopologyError(
            f"unknown topology {name!r}; available: {', '.join(family_names())}"
        )
    return family


# ----------------------------------------------------------------------
# file loading (edge lists and GraphML)
# ----------------------------------------------------------------------
def load_topology_file(
    path: Union[str, Path],
    name: Optional[str] = None,
    require_connected: bool = False,
) -> Graph:
    """Load a topology file, dispatching on its suffix.

    ``.graphml`` goes through the GraphML reader; anything else through the
    plain edge-list parser.  ``require_connected`` turns a disconnected
    input into a :class:`~repro.errors.TopologyError` — campaign topologies
    must be connected because every routing and embedding layer assumes it.
    """
    path = Path(path)
    if path.suffix.lower() == ".graphml":
        graph = load_graphml(path, name=name)
    else:
        graph = load_graph(path, name=name)
    if require_connected and not is_connected(graph):
        raise TopologyError(
            f"topology file {path.name!r} is disconnected "
            f"({graph.number_of_nodes()} nodes, {graph.number_of_edges()} links)"
        )
    return graph


def _zoo_family(path: Path) -> TopologyFamily:
    name = path.stem.lower()

    def build(_path: Path = path, _name: str = name) -> Graph:
        return load_topology_file(_path, name=_name, require_connected=True)

    return TopologyFamily(
        name=name,
        kind="zoo",
        summary=f"Topology Zoo snapshot ({path.name})",
        build=build,
    )


def _register_zoo_snapshots() -> None:
    if not DATA_DIR.is_dir():  # pragma: no cover - data dir ships with the package
        return
    for path in sorted(DATA_DIR.iterdir()):
        if path.suffix.lower() in TOPOLOGY_FILE_SUFFIXES:
            try:
                register_family(_zoo_family(path))
            except TopologyError as exc:
                # A snapshot whose stem collides with an existing family
                # (another data file, a synthetic generator, a legacy map)
                # would silently shadow it; fail loudly, naming the file.
                raise TopologyError(
                    f"zoo snapshot {path.name!r} cannot be registered: {exc}"
                ) from None


# ----------------------------------------------------------------------
# building and validation
# ----------------------------------------------------------------------
def build_topology(text: str) -> Graph:
    """Build a corpus spec (``name[:k=v,...]``) or load a topology file."""
    spec = try_parse_spec(text)
    if spec is not None:
        return spec.build()
    return load_topology_file(text)


@dataclass
class TopologyValidation:
    """The outcome of validating one corpus entry."""

    spec: str
    ok: bool
    nodes: int = 0
    links: int = 0
    parallel_links: int = 0
    two_edge_connected: bool = False
    problems: List[str] = field(default_factory=list)

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        detail = f"{self.nodes} nodes, {self.links} links"
        if self.parallel_links:
            detail += f", {self.parallel_links} parallel"
        if self.ok and not self.two_edge_connected:
            detail += ", has bridges"
        if self.problems:
            detail += "; " + "; ".join(self.problems)
        return f"{status:4s} {self.spec}  ({detail})"


def validate_topology(text: str) -> TopologyValidation:
    """Build one corpus entry and check the invariants campaigns rely on.

    Hard failures (``ok=False``): the entry does not build, is disconnected,
    or is too small to host a failure experiment.  Structural facts that are
    legal but worth surfacing — parallel links, bridges — are reported
    without failing.
    """
    report = TopologyValidation(spec=canonical_topology(text), ok=True)
    try:
        graph = build_topology(text)
    except Exception as exc:
        report.ok = False
        report.problems.append(str(exc))
        return report
    report.nodes = graph.number_of_nodes()
    report.links = graph.number_of_edges()
    seen: Dict[Tuple[str, str], int] = {}
    for edge in graph.edges():
        pair = (edge.u, edge.v) if edge.u <= edge.v else (edge.v, edge.u)
        seen[pair] = seen.get(pair, 0) + 1
    report.parallel_links = sum(count - 1 for count in seen.values() if count > 1)
    report.two_edge_connected = is_two_edge_connected(graph)
    if report.nodes < 3:
        report.ok = False
        report.problems.append("fewer than 3 nodes")
    if not is_connected(graph):
        report.ok = False
        report.problems.append("disconnected")
    return report


# ----------------------------------------------------------------------
# campaign sets
# ----------------------------------------------------------------------
#: The curated synthetic slice of the corpus: one seeded instance per major
#: generator family, sized so a corpus-wide sweep stays interactive.
SYNTHETIC_SET_MEMBERS: Tuple[str, ...] = (
    "ring:size=16",
    "grid:rows=4,cols=5",
    "torus:rows=4,cols=5",
    "fat-tree:k=4",
    "waxman:size=24,seed=7",
    "barabasi-albert:size=24,m=2,seed=3",
    "er-giant:size=30,probability=0.12,seed=5",
    "random-connected:size=20,extra=10,seed=11",
)

TOPOLOGY_SETS = ("zoo", "synthetic", "all")


def topology_set(name: str) -> List[str]:
    """Expand a named corpus set into canonical topology specs.

    ``zoo`` is every committed snapshot, ``synthetic`` the curated seeded
    generator slice, ``all`` both — the sets behind ``sweep --topology-set``.
    """
    key = name.strip().lower()
    if key == "zoo":
        return family_names(kind="zoo")
    if key == "synthetic":
        return [canonical_topology(member) for member in SYNTHETIC_SET_MEMBERS]
    if key == "all":
        return topology_set("zoo") + topology_set("synthetic")
    raise TopologyError(
        f"unknown topology set {name!r}; available: {', '.join(TOPOLOGY_SETS)}"
    )


# ----------------------------------------------------------------------
# built-in registrations
# ----------------------------------------------------------------------
def _legacy(name: str, summary: str, build: Callable[[], Graph]) -> None:
    register_family(TopologyFamily(name=name, kind="legacy", summary=summary, build=build))


_legacy("abilene", "Abilene (Internet2) backbone, 11 PoPs", abilene)
_legacy("teleglobe", "Teleglobe (AS6453) reconstruction", teleglobe)
_legacy("geant", "GEANT (2009-era) reconstruction", geant)
_legacy("fig1-example", "the six-node example of Figure 1(a)", example_fig1)


def _synthetic(
    name: str,
    summary: str,
    build: Callable[..., Graph],
    *params: TopologyParam,
) -> None:
    register_family(
        TopologyFamily(
            name=name, kind="synthetic", summary=summary, build=build, params=params
        )
    )


_synthetic(
    "ring",
    "a cycle (smallest 2-edge-connected topology)",
    lambda size: generators.ring_graph(size),
    TopologyParam("size", 16, "number of nodes"),
)
_synthetic(
    "grid",
    "planar rows x cols grid",
    lambda rows, cols: generators.grid_graph(rows, cols),
    TopologyParam("rows", 4, "grid rows"),
    TopologyParam("cols", 5, "grid columns"),
)
_synthetic(
    "torus",
    "grid with wrap-around links (genus-1)",
    lambda rows, cols: generators.torus_grid_graph(rows, cols),
    TopologyParam("rows", 4, "grid rows"),
    TopologyParam("cols", 5, "grid columns"),
)
_synthetic(
    "complete",
    "the complete graph K_n",
    lambda size: generators.complete_graph(size),
    TopologyParam("size", 8, "number of nodes"),
)
_synthetic(
    "wheel",
    "a hub joined to every node of a ring",
    lambda spokes: generators.wheel_graph(spokes),
    TopologyParam("spokes", 10, "ring size around the hub"),
)
_synthetic(
    "ladder",
    "two parallel paths joined by rungs",
    lambda rungs: generators.ladder_graph(rungs),
    TopologyParam("rungs", 8, "number of rungs"),
)
_synthetic(
    "petersen",
    "the Petersen graph (3-regular, non-planar, girth 5)",
    generators.petersen_graph,
)
_synthetic(
    "barbell",
    "two cliques joined by a path (bridge-heavy)",
    lambda bell, path: generators.barbell_graph(bell, path),
    TopologyParam("bell", 4, "clique size"),
    TopologyParam("path", 2, "connecting path length"),
)
_synthetic(
    "random-connected",
    "random spanning tree plus chords",
    lambda size, extra, seed: generators.random_connected_graph(size, extra, seed),
    TopologyParam("size", 20, "number of nodes"),
    TopologyParam("extra", 10, "chord edges beyond the spanning tree"),
    TopologyParam("seed", 0, "RNG seed"),
)
_synthetic(
    "random-planar",
    "grid plus non-crossing random diagonals",
    lambda rows, cols, diagonals, seed: generators.random_planar_graph(
        rows, cols, diagonals, seed
    ),
    TopologyParam("rows", 4, "grid rows"),
    TopologyParam("cols", 5, "grid columns"),
    TopologyParam("diagonals", 4, "cells that receive a diagonal"),
    TopologyParam("seed", 0, "RNG seed"),
)
_synthetic(
    "gnp",
    "G(n, p) patched into connectivity with ring edges",
    lambda size, probability, seed: generators.erdos_renyi_graph(
        size, probability, seed
    ),
    TopologyParam("size", 16, "number of nodes"),
    TopologyParam("probability", 0.25, "edge probability"),
    TopologyParam("seed", 0, "RNG seed"),
)
_synthetic(
    "er-giant",
    "giant component of one G(n, p) sample",
    lambda size, probability, seed: generators.er_giant_component_graph(
        size, probability, seed
    ),
    TopologyParam("size", 30, "nodes before extracting the giant component"),
    TopologyParam("probability", 0.12, "edge probability"),
    TopologyParam("seed", 0, "RNG seed"),
)
_synthetic(
    "waxman",
    "Waxman random geometric graph (distance weights)",
    lambda size, alpha, beta, seed: generators.waxman_graph(size, alpha, beta, seed),
    TopologyParam("size", 24, "number of nodes"),
    TopologyParam("alpha", 0.6, "overall link density"),
    TopologyParam("beta", 0.4, "long-link propensity"),
    TopologyParam("seed", 0, "RNG seed"),
)
_synthetic(
    "barabasi-albert",
    "preferential attachment (scale-free degrees)",
    lambda size, m, seed: generators.barabasi_albert_graph(size, m, seed),
    TopologyParam("size", 24, "number of nodes"),
    TopologyParam("m", 2, "attachments per new node"),
    TopologyParam("seed", 0, "RNG seed"),
)
_synthetic(
    "fat-tree",
    "k-ary fat-tree switch fabric (core/agg/edge)",
    lambda k: generators.fat_tree_graph(k),
    TopologyParam("k", 4, "fabric arity (even)"),
)

_register_zoo_snapshots()
