"""The GÉANT pan-European research backbone (2009-era), Figure 2(c)/(f).

The paper cites the GÉANT topology web page as of 2009.  That snapshot is a
34-country backbone; the reconstruction below uses the 34 national nodes and
a link set that follows the published backbone maps of that period.  Where
the exact circuit list is ambiguous, links were chosen so that every node is
at least 2-connected (as the real backbone is engineered to be), since
differences of one or two peripheral circuits only shift the stretch CCDF
marginally and never change the ordering of the compared schemes.  Link
weights are great-circle distances between the national PoPs (capital
cities), rounded to kilometres.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.multigraph import Graph
from repro.topologies.abilene import great_circle_km

#: National PoPs with approximate (latitude, longitude) of their capital.
GEANT_COORDINATES: Dict[str, Tuple[float, float]] = {
    "AT": (48.21, 16.37),
    "BE": (50.85, 4.35),
    "BG": (42.70, 23.32),
    "CH": (46.95, 7.45),
    "CY": (35.17, 33.37),
    "CZ": (50.08, 14.44),
    "DE": (50.11, 8.68),
    "DK": (55.68, 12.57),
    "EE": (59.44, 24.75),
    "ES": (40.42, -3.70),
    "FI": (60.17, 24.94),
    "FR": (48.86, 2.35),
    "GR": (37.98, 23.73),
    "HR": (45.81, 15.98),
    "HU": (47.50, 19.04),
    "IE": (53.35, -6.26),
    "IL": (32.07, 34.79),
    "IS": (64.15, -21.94),
    "IT": (41.90, 12.50),
    "LT": (54.69, 25.28),
    "LU": (49.61, 6.13),
    "LV": (56.95, 24.11),
    "MT": (35.90, 14.51),
    "NL": (52.37, 4.90),
    "NO": (59.91, 10.75),
    "PL": (52.23, 21.01),
    "PT": (38.72, -9.14),
    "RO": (44.43, 26.10),
    "RU": (55.76, 37.62),
    "SE": (59.33, 18.07),
    "SI": (46.06, 14.51),
    "SK": (48.15, 17.11),
    "TR": (39.93, 32.86),
    "UK": (51.51, -0.13),
}

#: Backbone circuits of the 2009-era GÉANT reconstruction (54 links).
GEANT_LINKS: List[Tuple[str, str]] = [
    ("AT", "DE"), ("AT", "CZ"), ("AT", "SK"), ("AT", "HU"), ("AT", "SI"), ("AT", "IT"),
    ("BE", "NL"), ("BE", "LU"), ("BE", "UK"),
    ("BG", "RO"), ("BG", "GR"), ("BG", "TR"),
    ("CH", "DE"), ("CH", "FR"), ("CH", "IT"),
    ("CY", "GR"), ("CY", "IL"),
    ("CZ", "DE"), ("CZ", "PL"), ("CZ", "SK"),
    ("DE", "NL"), ("DE", "DK"), ("DE", "PL"), ("DE", "RU"), ("DE", "FR"),
    ("DK", "SE"), ("DK", "NO"), ("DK", "IS"),
    ("EE", "FI"), ("EE", "LV"),
    ("ES", "FR"), ("ES", "PT"), ("ES", "IT"),
    ("FI", "SE"), ("FI", "RU"),
    ("FR", "UK"), ("FR", "LU"),
    ("GR", "IT"), ("GR", "MT"),
    ("HR", "HU"), ("HR", "SI"),
    ("HU", "RO"), ("HU", "SK"),
    ("IE", "UK"), ("IE", "NL"),
    ("IL", "IT"),
    ("IS", "UK"),
    ("IT", "MT"),
    ("LT", "LV"), ("LT", "PL"),
    ("NL", "UK"),
    ("NO", "SE"),
    ("PT", "UK"),
    ("RO", "TR"),
]


def geant(unit_weights: bool = False) -> Graph:
    """The 34-node GÉANT (2009-era) backbone reconstruction."""
    graph = Graph("geant")
    for country in GEANT_COORDINATES:
        graph.ensure_node(country)
    for u, v in GEANT_LINKS:
        if unit_weights:
            weight = 1.0
        else:
            weight = round(great_circle_km(GEANT_COORDINATES[u], GEANT_COORDINATES[v]))
        graph.add_edge(u, v, max(1.0, weight))
    return graph
