"""The six-node example network of Figure 1(a), with its exact embedding.

The paper never lists the example's links explicitly, but Sections 4.1–4.3
pin them down completely:

* Table 1 shows node ``D`` with interfaces towards ``B``, ``E`` and ``F``.
* Cycle ``c1`` is the face ``F -> D -> E -> F`` (Table 1 rows for ``IFD``
  and the complementary column for ``IBD``).
* Cycle ``c2`` is ``D -> B -> C -> E -> D`` (the backup walk of the single
  failure example of Section 4.2).
* Cycle ``c3`` is ``B -> A -> C -> B`` (the multi-failure walk of
  Section 4.3: B forwards over ``IBA`` and the packet reaches C "after being
  forwarded by A").
* Cycle ``c4`` is the outer face ``A -> B -> D -> F -> E -> C -> A``
  (the remaining darts; the footnote explains its apparently opposite
  orientation as a stereographic-projection artifact).

Euler's formula checks out (6 - 8 + 4 = 2, a sphere), every link lies on
exactly two oppositely-oriented cycles, and the link weights below make the
shortest path tree towards ``F`` match the thick edges of Figure 1
(``A-B-D-E-F``, with ``C`` joining at ``E``), including the ``DD = 2`` value
node ``D`` writes in the Section 4.3 walk-through.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.embedding.builder import CellularEmbedding
from repro.embedding.faces import rotation_from_faces
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph

#: Link weights chosen so that the shortest-path tree to ``F`` uses
#: A-B, B-D, D-E, E-F and C-E, as drawn (thick edges) in Figure 1.
_EXAMPLE_EDGES: List[Tuple[str, str, float]] = [
    ("A", "B", 1.0),
    ("A", "C", 3.0),
    ("B", "C", 2.0),
    ("B", "D", 1.0),
    ("C", "E", 1.0),
    ("D", "E", 1.0),
    ("D", "F", 3.0),
    ("E", "F", 1.0),
]

#: The four cellular cycles of Figure 1(a), as node walks.
_EXAMPLE_FACES: Dict[str, List[str]] = {
    "c1": ["F", "D", "E"],
    "c2": ["D", "B", "C", "E"],
    "c3": ["B", "A", "C"],
    "c4": ["A", "B", "D", "F", "E", "C"],
}


def example_fig1() -> Graph:
    """The six-node network of Figure 1(a)."""
    return Graph.from_edge_list(_EXAMPLE_EDGES, name="fig1-example")


def _dart_between(graph: Graph, tail: str, head: str) -> Dart:
    edge_ids = graph.edge_ids_between(tail, head)
    if not edge_ids:
        raise ValueError(f"example graph has no edge {tail}--{head}")
    return graph.dart(edge_ids[0], tail)


def example_fig1_embedding() -> CellularEmbedding:
    """The exact cellular embedding (cycles c1–c4) used in the paper's examples."""
    graph = example_fig1()
    face_walks = []
    for nodes in _EXAMPLE_FACES.values():
        walk = [
            _dart_between(graph, tail, head)
            for tail, head in zip(nodes, nodes[1:] + nodes[:1])
        ]
        face_walks.append(walk)
    rotation = rotation_from_faces(graph, face_walks)
    return CellularEmbedding(graph, rotation)


def example_face_names() -> Dict[str, List[str]]:
    """The paper's cycle names mapped to their node walks (for display/tests)."""
    return {name: list(nodes) for name, nodes in _EXAMPLE_FACES.items()}
