"""Plain-text topology format: load and save weighted edge lists.

The format is intentionally trivial (one link per line, ``u v [weight]``,
``#`` comments) so that users can drop in their own ISP topologies — e.g.
Rocketfuel or Topology Zoo exports converted with a one-line awk script —
and run the full experiment suite on them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.errors import TopologyError
from repro.graph.multigraph import Graph


def graph_from_text(text: str, name: str = "network") -> Graph:
    """Parse a weighted edge list.

    Each non-empty, non-comment line is ``<node> <node> [<weight>]``.  Nodes
    appearing only in a ``node <name>`` line (no links) are allowed so that
    topologies with isolated routers can at least be represented; declaring
    a name that already exists is rejected as a duplicate.
    """
    graph = Graph(name)
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if parts[0] == "node":
            if len(parts) != 2:
                raise TopologyError(f"line {line_number}: expected 'node <name>'")
            if graph.has_node(parts[1]):
                raise TopologyError(
                    f"line {line_number}: duplicate node name {parts[1]!r}"
                )
            graph.ensure_node(parts[1])
            continue
        if len(parts) == 2:
            u, v = parts
            weight = 1.0
        elif len(parts) == 3:
            u, v = parts[0], parts[1]
            try:
                weight = float(parts[2])
            except ValueError:
                raise TopologyError(
                    f"line {line_number}: weight {parts[2]!r} is not a number"
                ) from None
        else:
            raise TopologyError(
                f"line {line_number}: expected '<node> <node> [<weight>]', got {raw_line!r}"
            )
        if weight <= 0:
            raise TopologyError(f"line {line_number}: weight must be positive, got {weight}")
        graph.add_edge(u, v, weight)
    return graph


def graph_to_text(graph: Graph) -> str:
    """Serialise a graph to the edge-list format accepted by :func:`graph_from_text`."""
    lines = [f"# topology: {graph.name}"]
    connected_nodes = set()
    for edge in graph.edges():
        connected_nodes.add(edge.u)
        connected_nodes.add(edge.v)
    for node in graph.nodes():
        if node not in connected_nodes:
            lines.append(f"node {node}")
    for edge in graph.edges():
        lines.append(f"{edge.u} {edge.v} {edge.weight:g}")
    return "\n".join(lines) + "\n"


def load_graph(path: Union[str, Path], name: Optional[str] = None) -> Graph:
    """Load a topology file written in the edge-list format."""
    path = Path(path)
    return graph_from_text(path.read_text(), name=name or path.stem)


def save_graph(graph: Graph, path: Union[str, Path]) -> Path:
    """Write ``graph`` to ``path`` in the edge-list format; returns the path."""
    path = Path(path)
    path.write_text(graph_to_text(graph))
    return path
