"""Teleglobe (AS6453) PoP-level topology approximation, Figure 2(b)/(e).

The paper uses the Teleglobe backbone as measured by Rocketfuel (reference
[18]).  The Rocketfuel PoP maps are not redistributable, so this module
reconstructs a PoP-level graph of the same scale and flavour: a global
tier-1 carrier with North-American, European and Asian PoP clusters joined
by transoceanic links (26 PoPs, 40 links, mean degree ≈ 3.1).  Stretch
distributions on this reconstruction have the same qualitative shape as on
the measured topology — a dense continental core with long "detour" backup
paths across oceans — which is what the Figure 2(b)/(e) comparison exercises.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.multigraph import Graph
from repro.topologies.abilene import great_circle_km

#: PoP cities with approximate (latitude, longitude).
TELEGLOBE_COORDINATES: Dict[str, Tuple[float, float]] = {
    "NewYork": (40.71, -74.01),
    "Newark": (40.74, -74.17),
    "Montreal": (45.50, -73.57),
    "Toronto": (43.65, -79.38),
    "Chicago": (41.88, -87.63),
    "Ashburn": (39.04, -77.49),
    "Atlanta": (33.75, -84.39),
    "Miami": (25.76, -80.19),
    "Dallas": (32.78, -96.80),
    "LosAngeles": (34.05, -118.24),
    "PaloAlto": (37.44, -122.14),
    "Seattle": (47.61, -122.33),
    "London": (51.51, -0.13),
    "Paris": (48.86, 2.35),
    "Frankfurt": (50.11, 8.68),
    "Amsterdam": (52.37, 4.90),
    "Madrid": (40.42, -3.70),
    "Marseille": (43.30, 5.37),
    "HongKong": (22.32, 114.17),
    "Singapore": (1.35, 103.82),
    "Tokyo": (35.68, 139.69),
    "Sydney": (-33.87, 151.21),
    "Mumbai": (19.08, 72.88),
    "Chennai": (13.08, 80.27),
    "Dubai": (25.20, 55.27),
    "SaoPaulo": (-23.55, -46.63),
}

#: PoP-level links of the reconstruction (40 links).
TELEGLOBE_LINKS: List[Tuple[str, str]] = [
    # North-American core
    ("Seattle", "PaloAlto"), ("Seattle", "Chicago"), ("PaloAlto", "LosAngeles"),
    ("LosAngeles", "Dallas"), ("Dallas", "Atlanta"), ("Dallas", "Chicago"),
    ("Atlanta", "Miami"), ("Atlanta", "Ashburn"), ("Ashburn", "NewYork"),
    ("Ashburn", "Chicago"), ("NewYork", "Newark"), ("Newark", "Ashburn"),
    ("NewYork", "Montreal"), ("Montreal", "Toronto"), ("Toronto", "Chicago"),
    ("NewYork", "Chicago"),
    # Transatlantic
    ("NewYork", "London"), ("Newark", "London"), ("NewYork", "Paris"),
    ("Montreal", "Amsterdam"),
    # European core
    ("London", "Paris"), ("London", "Amsterdam"), ("Paris", "Frankfurt"),
    ("Amsterdam", "Frankfurt"), ("Paris", "Madrid"), ("Madrid", "Marseille"),
    ("Paris", "Marseille"),
    # Middle East / Asia / Pacific
    ("Marseille", "Dubai"), ("Dubai", "Mumbai"), ("Mumbai", "Chennai"),
    ("Chennai", "Singapore"), ("Mumbai", "Singapore"), ("Singapore", "HongKong"),
    ("HongKong", "Tokyo"), ("Tokyo", "Seattle"), ("Tokyo", "LosAngeles"),
    ("Singapore", "Sydney"), ("Sydney", "LosAngeles"),
    # South America
    ("SaoPaulo", "Miami"), ("SaoPaulo", "NewYork"),
]


def teleglobe(unit_weights: bool = False) -> Graph:
    """The 26-PoP Teleglobe (AS6453) reconstruction."""
    graph = Graph("teleglobe")
    for city in TELEGLOBE_COORDINATES:
        graph.ensure_node(city)
    for u, v in TELEGLOBE_LINKS:
        if unit_weights:
            weight = 1.0
        else:
            weight = round(great_circle_km(TELEGLOBE_COORDINATES[u], TELEGLOBE_COORDINATES[v]))
        graph.add_edge(u, v, max(1.0, weight))
    return graph
