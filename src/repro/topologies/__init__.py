"""Network topologies used by the paper's evaluation plus synthetic generators.

The paper evaluates PR on three ISP topologies: Abilene, Teleglobe and Géant.
Abilene is public and reproduced exactly; the Géant (2009-era) and Teleglobe
(Rocketfuel AS6453) graphs are reconstructions of comparable size and
structure (see DESIGN.md §3 for the substitution rationale).  The package
also contains the six-node example of Figure 1(a) — with the exact cellular
embedding (cycles c1–c4) used throughout Section 4 — and a set of synthetic
generators used by the tests, the property-based suites and the ablation
benchmarks.
"""

from repro.topologies.example import example_fig1, example_fig1_embedding
from repro.topologies.abilene import abilene
from repro.topologies.geant import geant
from repro.topologies.teleglobe import teleglobe
from repro.topologies.generators import (
    barabasi_albert_graph,
    barbell_graph,
    complete_graph,
    er_giant_component_graph,
    erdos_renyi_graph,
    fat_tree_graph,
    grid_graph,
    k33_graph,
    k5_graph,
    ladder_graph,
    petersen_graph,
    random_planar_graph,
    ring_graph,
    torus_grid_graph,
    waxman_graph,
    wheel_graph,
)
from repro.topologies.graphml import graph_from_graphml, load_graphml
from repro.topologies.parser import graph_from_text, graph_to_text, load_graph, save_graph
from repro.topologies.registry import available_topologies, by_name
from repro.topologies.corpus import (
    TopologyFamily,
    TopologyParam,
    TopologySpec,
    TopologyValidation,
    build_topology,
    canonical_topology,
    family_names,
    get_family,
    load_topology_file,
    parse_topology_spec,
    register_family,
    registered_families,
    topology_set,
    validate_topology,
)

__all__ = [
    "TopologyFamily",
    "TopologyParam",
    "TopologySpec",
    "TopologyValidation",
    "build_topology",
    "canonical_topology",
    "family_names",
    "get_family",
    "load_topology_file",
    "parse_topology_spec",
    "register_family",
    "registered_families",
    "topology_set",
    "validate_topology",
    "barabasi_albert_graph",
    "er_giant_component_graph",
    "fat_tree_graph",
    "graph_from_graphml",
    "load_graphml",
    "example_fig1",
    "example_fig1_embedding",
    "abilene",
    "geant",
    "teleglobe",
    "barbell_graph",
    "complete_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "k33_graph",
    "k5_graph",
    "ladder_graph",
    "petersen_graph",
    "random_planar_graph",
    "ring_graph",
    "torus_grid_graph",
    "waxman_graph",
    "wheel_graph",
    "graph_from_text",
    "graph_to_text",
    "load_graph",
    "save_graph",
    "available_topologies",
    "by_name",
]
