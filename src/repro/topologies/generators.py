"""Synthetic topology generators.

These back the unit tests, the hypothesis property suites (random connected
graphs of controlled size) and the embedding-quality ablation benchmark.
All generators produce :class:`~repro.graph.multigraph.Graph` instances with
string node names of the form ``n0, n1, ...`` (or ``r<row>c<col>`` for
grids), unit weights unless stated otherwise, and deterministic output for a
given seed.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Dict, List, Optional

from repro.errors import TopologyError
from repro.graph.connectivity import is_connected
from repro.graph.multigraph import Graph


def _node(index: int) -> str:
    return f"n{index}"


def ring_graph(size: int, weight: float = 1.0) -> Graph:
    """A cycle of ``size`` nodes (the smallest 2-edge-connected topologies)."""
    if size < 3:
        raise TopologyError("a ring needs at least 3 nodes")
    graph = Graph(f"ring-{size}")
    for index in range(size):
        graph.ensure_node(_node(index))
    for index in range(size):
        graph.add_edge(_node(index), _node((index + 1) % size), weight)
    return graph


def grid_graph(rows: int, cols: int, weight: float = 1.0) -> Graph:
    """A planar ``rows x cols`` grid."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid dimensions must be positive")
    graph = Graph(f"grid-{rows}x{cols}")
    for row in range(rows):
        for col in range(cols):
            graph.ensure_node(f"r{row}c{col}")
    for row in range(rows):
        for col in range(cols):
            if col + 1 < cols:
                graph.add_edge(f"r{row}c{col}", f"r{row}c{col + 1}", weight)
            if row + 1 < rows:
                graph.add_edge(f"r{row}c{col}", f"r{row + 1}c{col}", weight)
    return graph


def torus_grid_graph(rows: int, cols: int, weight: float = 1.0) -> Graph:
    """A grid with wrap-around links — a natural genus-1 (toroidal) topology."""
    if rows < 3 or cols < 3:
        raise TopologyError("a torus grid needs at least 3x3 nodes")
    graph = Graph(f"torus-{rows}x{cols}")
    for row in range(rows):
        for col in range(cols):
            graph.ensure_node(f"r{row}c{col}")
    for row in range(rows):
        for col in range(cols):
            graph.add_edge(f"r{row}c{col}", f"r{row}c{(col + 1) % cols}", weight)
            graph.add_edge(f"r{row}c{col}", f"r{(row + 1) % rows}c{col}", weight)
    return graph


def complete_graph(size: int, weight: float = 1.0) -> Graph:
    """The complete graph K_n (non-planar for n >= 5)."""
    if size < 2:
        raise TopologyError("a complete graph needs at least 2 nodes")
    graph = Graph(f"complete-{size}")
    for index in range(size):
        graph.ensure_node(_node(index))
    for left, right in itertools.combinations(range(size), 2):
        graph.add_edge(_node(left), _node(right), weight)
    return graph


def k5_graph() -> Graph:
    """K5, the smallest non-planar complete graph."""
    graph = complete_graph(5)
    graph.name = "k5"
    return graph


def k33_graph() -> Graph:
    """K3,3, the other Kuratowski obstruction to planarity."""
    graph = Graph("k33")
    left = [f"a{index}" for index in range(3)]
    right = [f"b{index}" for index in range(3)]
    for node in left + right:
        graph.ensure_node(node)
    for u in left:
        for v in right:
            graph.add_edge(u, v, 1.0)
    return graph


def petersen_graph() -> Graph:
    """The Petersen graph: 3-regular, non-planar, girth 5 — a good stress test."""
    graph = Graph("petersen")
    outer = [f"o{index}" for index in range(5)]
    inner = [f"i{index}" for index in range(5)]
    for node in outer + inner:
        graph.ensure_node(node)
    for index in range(5):
        graph.add_edge(outer[index], outer[(index + 1) % 5], 1.0)
        graph.add_edge(inner[index], inner[(index + 2) % 5], 1.0)
        graph.add_edge(outer[index], inner[index], 1.0)
    return graph


def wheel_graph(spokes: int, weight: float = 1.0) -> Graph:
    """A hub connected to every node of a ring (planar, 2-connected)."""
    if spokes < 3:
        raise TopologyError("a wheel needs at least 3 spokes")
    graph = ring_graph(spokes, weight)
    graph.name = f"wheel-{spokes}"
    graph.ensure_node("hub")
    for index in range(spokes):
        graph.add_edge("hub", _node(index), weight)
    return graph


def ladder_graph(rungs: int, weight: float = 1.0) -> Graph:
    """Two parallel paths joined by rungs (planar, 2-connected for rungs >= 2)."""
    if rungs < 2:
        raise TopologyError("a ladder needs at least 2 rungs")
    graph = Graph(f"ladder-{rungs}")
    for index in range(rungs):
        graph.ensure_node(f"t{index}")
        graph.ensure_node(f"b{index}")
    for index in range(rungs):
        graph.add_edge(f"t{index}", f"b{index}", weight)
        if index + 1 < rungs:
            graph.add_edge(f"t{index}", f"t{index + 1}", weight)
            graph.add_edge(f"b{index}", f"b{index + 1}", weight)
    return graph


def barbell_graph(bell_size: int, path_length: int = 1) -> Graph:
    """Two complete graphs joined by a path — a topology full of bridges."""
    if bell_size < 3:
        raise TopologyError("each bell needs at least 3 nodes")
    graph = Graph(f"barbell-{bell_size}-{path_length}")
    left = [f"l{index}" for index in range(bell_size)]
    right = [f"r{index}" for index in range(bell_size)]
    for node in left + right:
        graph.ensure_node(node)
    for u, v in itertools.combinations(left, 2):
        graph.add_edge(u, v, 1.0)
    for u, v in itertools.combinations(right, 2):
        graph.add_edge(u, v, 1.0)
    previous = left[0]
    for index in range(path_length):
        middle = f"m{index}"
        graph.ensure_node(middle)
        graph.add_edge(previous, middle, 1.0)
        previous = middle
    graph.add_edge(previous, right[0], 1.0)
    return graph


def erdos_renyi_graph(
    size: int,
    probability: float,
    seed: Optional[int] = None,
    ensure_connectivity: bool = True,
) -> Graph:
    """G(n, p) random graph, optionally patched into connectivity with a ring.

    The patching (adding ring edges between consecutive isolated parts) keeps
    the degree distribution close to G(n, p) while guaranteeing the graph is
    usable by the embedding and routing layers, which require connectivity.
    """
    if size < 2:
        raise TopologyError("a random graph needs at least 2 nodes")
    if not 0.0 <= probability <= 1.0:
        raise TopologyError("edge probability must lie in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(f"gnp-{size}-{probability}")
    for index in range(size):
        graph.ensure_node(_node(index))
    for left, right in itertools.combinations(range(size), 2):
        if rng.random() < probability:
            graph.add_edge(_node(left), _node(right), 1.0)
    if ensure_connectivity and not is_connected(graph):
        for index in range(size):
            u, v = _node(index), _node((index + 1) % size)
            if not graph.has_edge_between(u, v):
                graph.add_edge(u, v, 1.0)
    return graph


def waxman_graph(
    size: int,
    alpha: float = 0.6,
    beta: float = 0.4,
    seed: Optional[int] = None,
    ensure_connectivity: bool = True,
) -> Graph:
    """Waxman random geometric graph (the classic ISP-like generator).

    Nodes are placed uniformly in the unit square; an edge joins ``u`` and
    ``v`` with probability ``alpha * exp(-d(u, v) / (beta * L))`` where ``L``
    is the maximum possible distance.  Weights are the Euclidean distances
    scaled by 100 and rounded up, so that shortest paths prefer short links.
    """
    if size < 2:
        raise TopologyError("a Waxman graph needs at least 2 nodes")
    rng = random.Random(seed)
    positions = {_node(index): (rng.random(), rng.random()) for index in range(size)}
    graph = Graph(f"waxman-{size}")
    for node in positions:
        graph.ensure_node(node)
    max_distance = math.sqrt(2.0)
    names = list(positions)
    for u, v in itertools.combinations(names, 2):
        (x1, y1), (x2, y2) = positions[u], positions[v]
        distance = math.hypot(x1 - x2, y1 - y2)
        if rng.random() < alpha * math.exp(-distance / (beta * max_distance)):
            graph.add_edge(u, v, max(1.0, math.ceil(distance * 100)))
    if ensure_connectivity and not is_connected(graph):
        ordered = sorted(names, key=lambda name: positions[name])
        for left, right in zip(ordered, ordered[1:]):
            if not graph.has_edge_between(left, right):
                (x1, y1), (x2, y2) = positions[left], positions[right]
                graph.add_edge(left, right, max(1.0, math.ceil(math.hypot(x1 - x2, y1 - y2) * 100)))
    return graph


def random_planar_graph(
    rows: int,
    cols: int,
    extra_diagonals: int = 0,
    seed: Optional[int] = None,
) -> Graph:
    """A random planar 2-connected graph: a grid plus non-crossing diagonals.

    Each grid cell can host at most one diagonal, which keeps the graph
    planar by construction; ``extra_diagonals`` cells (chosen at random) get
    one.
    """
    graph = grid_graph(rows, cols)
    graph.name = f"planar-{rows}x{cols}-{extra_diagonals}"
    rng = random.Random(seed)
    cells = [(row, col) for row in range(rows - 1) for col in range(cols - 1)]
    rng.shuffle(cells)
    for row, col in cells[: max(0, extra_diagonals)]:
        if rng.random() < 0.5:
            graph.add_edge(f"r{row}c{col}", f"r{row + 1}c{col + 1}", 1.0)
        else:
            graph.add_edge(f"r{row}c{col + 1}", f"r{row + 1}c{col}", 1.0)
    return graph


def barabasi_albert_graph(
    size: int,
    attachments: int = 2,
    seed: Optional[int] = None,
) -> Graph:
    """Barabási–Albert preferential-attachment graph (scale-free degrees).

    The graph starts as a clique on ``attachments + 1`` nodes; every further
    node attaches to ``attachments`` *distinct* existing nodes chosen with
    probability proportional to their current degree (implemented with the
    classic repeated-endpoints urn).  Always connected by construction, with
    the hub-and-spoke degree skew of real AS- and router-level graphs.
    """
    if attachments < 1:
        raise TopologyError("Barabási–Albert needs at least 1 attachment per node")
    if size < attachments + 2:
        raise TopologyError(
            f"a Barabási–Albert graph with m={attachments} needs at least "
            f"{attachments + 2} nodes"
        )
    rng = random.Random(seed)
    graph = Graph(f"ba-{size}-{attachments}")
    core = attachments + 1
    for index in range(core):
        graph.ensure_node(_node(index))
    #: One entry per edge endpoint — sampling it uniformly is sampling nodes
    #: proportionally to degree.
    urn: List[int] = []
    for left, right in itertools.combinations(range(core), 2):
        graph.add_edge(_node(left), _node(right), 1.0)
        urn.extend((left, right))
    for index in range(core, size):
        targets: List[int] = []
        while len(targets) < attachments:
            candidate = urn[rng.randrange(len(urn))]
            if candidate not in targets:
                targets.append(candidate)
        graph.ensure_node(_node(index))
        for target in targets:
            graph.add_edge(_node(index), _node(target), 1.0)
            urn.extend((index, target))
    return graph


def fat_tree_graph(arity: int, weight: float = 1.0) -> Graph:
    """A k-ary fat-tree switch fabric (core, aggregation and edge layers).

    ``arity`` (the classic ``k``) must be even: the fabric has ``(k/2)^2``
    core switches and ``k`` pods of ``k/2`` aggregation plus ``k/2`` edge
    switches.  Aggregation switch ``i`` of every pod uplinks to core switches
    ``i*(k/2) .. (i+1)*(k/2)-1``; within a pod every edge switch connects to
    every aggregation switch.  Hosts are omitted (router-level topology).
    """
    if arity < 2 or arity % 2:
        raise TopologyError("a fat-tree needs an even arity k >= 2")
    half = arity // 2
    graph = Graph(f"fat-tree-{arity}")
    cores = [f"c{index}" for index in range(half * half)]
    for core in cores:
        graph.ensure_node(core)
    for pod in range(arity):
        aggs = [f"p{pod}a{index}" for index in range(half)]
        edges = [f"p{pod}e{index}" for index in range(half)]
        for node in aggs + edges:
            graph.ensure_node(node)
        for index, agg in enumerate(aggs):
            for slot in range(half):
                graph.add_edge(agg, cores[index * half + slot], weight)
        for edge in edges:
            for agg in aggs:
                graph.add_edge(edge, agg, weight)
    return graph


def er_giant_component_graph(
    size: int,
    probability: float,
    seed: Optional[int] = None,
) -> Graph:
    """The giant component of one G(n, p) sample, nodes relabelled densely.

    Unlike :func:`erdos_renyi_graph` (which patches the sample into
    connectivity with ring edges), this keeps the *organic* connected
    structure of the sample: draw G(n, p) once, keep the largest connected
    component, drop the rest.  Nodes are renamed ``n0, n1, ...`` in original
    order so that the result has the same dense naming as the other
    generators.  Raises if the giant component has fewer than 3 nodes —
    raise ``probability`` (or ``size``) instead of resampling, so the output
    stays a pure function of the seed.
    """
    sample = erdos_renyi_graph(size, probability, seed=seed, ensure_connectivity=False)
    components: Dict[str, int] = {}
    members: Dict[int, List[str]] = {}
    for node in sample.nodes():
        if node in components:
            continue
        label = len(members)
        stack = [node]
        components[node] = label
        members[label] = [node]
        while stack:
            current = stack.pop()
            for neighbor in sample.neighbors(current):
                if neighbor not in components:
                    components[neighbor] = label
                    members[label].append(neighbor)
                    stack.append(neighbor)
    giant = max(members.values(), key=len)
    if len(giant) < 3:
        raise TopologyError(
            f"the giant component of G({size}, {probability}) with this seed "
            f"has only {len(giant)} nodes; raise probability or size"
        )
    keep = set(giant)
    ordered = [node for node in sample.nodes() if node in keep]
    renamed = {node: _node(index) for index, node in enumerate(ordered)}
    graph = Graph(f"er-giant-{size}-{probability}")
    for node in ordered:
        graph.ensure_node(renamed[node])
    for edge in sample.edges():
        if edge.u in keep and edge.v in keep:
            graph.add_edge(renamed[edge.u], renamed[edge.v], edge.weight)
    return graph


def random_connected_graph(
    size: int,
    extra_edges: int,
    seed: Optional[int] = None,
) -> Graph:
    """A random connected graph: random spanning tree plus ``extra_edges`` chords.

    Useful for property-based tests that need arbitrary connected inputs of
    controlled density.
    """
    if size < 2:
        raise TopologyError("need at least 2 nodes")
    rng = random.Random(seed)
    graph = Graph(f"random-connected-{size}-{extra_edges}")
    names = [_node(index) for index in range(size)]
    for name in names:
        graph.ensure_node(name)
    shuffled = list(names)
    rng.shuffle(shuffled)
    for index in range(1, size):
        attach = rng.randrange(index)
        graph.add_edge(shuffled[index], shuffled[attach], 1.0)
    attempts = 0
    added = 0
    while added < extra_edges and attempts < 20 * extra_edges + 20:
        attempts += 1
        u, v = rng.sample(names, 2)
        if not graph.has_edge_between(u, v):
            graph.add_edge(u, v, 1.0)
            added += 1
    return graph
