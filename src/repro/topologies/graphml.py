"""GraphML topology ingestion (the Topology Zoo interchange format).

The `Internet Topology Zoo <http://www.topology-zoo.org/>`_ publishes its
network maps as GraphML.  This loader reads the subset of GraphML those
files use — ``<key>`` attribute declarations, ``<node>``/``<edge>`` elements
with ``<data>`` children — into the package's :class:`~repro.graph.multigraph.Graph`,
with strict validation:

* malformed XML, missing node ids, duplicate node ids/labels and edges that
  reference undeclared nodes all raise :class:`~repro.errors.TopologyError`;
* link weights are read from a ``weight`` (or ``LinkWeight``) edge attribute
  when present, coerced to a positive finite float, defaulting to ``1.0``;
* parallel links are governed by ``multi``: kept as multigraph edges
  (``"keep"``, the default — ISP PoP pairs routinely run parallel links),
  collapsed to the minimum-weight link (``"merge"``), or rejected
  (``"error"``);
* directed exports (``edgedefault="directed"``) conventionally list every
  trunk twice, once per direction — reciprocal duplicates of one unordered
  pair collapse to the first occurrence instead of doubling the link count;
* self-loops (which occur in a few Zoo exports) are dropped — a router-level
  topology has no use for them.

Node display names prefer the Zoo's ``label`` attribute (city names) when
every node has one and they are unique; otherwise the raw GraphML ids are
used.  Either way the naming is deterministic, so content-addressed caches
key the same file to the same fingerprint on every load.
"""

from __future__ import annotations

import math
import xml.etree.ElementTree as ElementTree
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import TopologyError
from repro.graph.multigraph import Graph

#: Edge attribute names (``attr.name`` of a ``<key>`` declaration) accepted
#: as the link weight, in preference order, matched case-insensitively.
_WEIGHT_ATTRS = ("weight", "linkweight", "cost", "metric")

_MULTI_MODES = ("keep", "merge", "error")


def _local(tag: str) -> str:
    """Tag name with any ``{namespace}`` prefix stripped."""
    return tag.rsplit("}", 1)[-1]


def _data_values(element: ElementTree.Element) -> Dict[str, str]:
    """``key id -> text`` for the ``<data>`` children of one element."""
    values: Dict[str, str] = {}
    for child in element:
        if _local(child.tag) == "data" and child.get("key") is not None:
            values[child.get("key", "")] = (child.text or "").strip()
    return values


def _coerce_weight(text: str, context: str) -> float:
    try:
        weight = float(text)
    except ValueError:
        raise TopologyError(f"{context}: weight {text!r} is not a number") from None
    if not math.isfinite(weight):
        raise TopologyError(f"{context}: weight {text!r} is not finite")
    if weight <= 0:
        raise TopologyError(f"{context}: weight must be positive, got {weight:g}")
    return weight


def graph_from_graphml(
    text: str,
    name: str = "network",
    multi: str = "keep",
) -> Graph:
    """Parse a GraphML document into a :class:`Graph`.

    ``multi`` selects the parallel-link policy (see the module docstring).
    """
    if multi not in _MULTI_MODES:
        raise TopologyError(
            f"unknown multi-edge mode {multi!r}; expected one of {_MULTI_MODES}"
        )
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise TopologyError(f"malformed GraphML: {exc}") from None
    if _local(root.tag) != "graphml":
        raise TopologyError(
            f"not a GraphML document (root element {_local(root.tag)!r})"
        )

    # <key> declarations: key id -> declared attribute name (lowercased).
    attr_names: Dict[str, str] = {}
    for element in root.iter():
        if _local(element.tag) == "key" and element.get("id") is not None:
            attr_names[element.get("id", "")] = (
                element.get("attr.name") or element.get("yfiles.type") or ""
            ).lower()

    graphs = [element for element in root if _local(element.tag) == "graph"]
    if not graphs:
        raise TopologyError("GraphML document declares no <graph> element")
    graph_element = graphs[0]
    # Directed exports conventionally list every trunk twice (A->B and
    # B->A); loading those as two undirected links would double every count,
    # so reciprocal duplicates of one unordered pair collapse to the first.
    directed = graph_element.get("edgedefault") == "directed"

    # First pass: nodes, with duplicate-id and duplicate-label detection.
    ids: List[str] = []
    labels: Dict[str, Optional[str]] = {}
    edges: List[Tuple[str, str, float]] = []
    for element in graph_element:
        tag = _local(element.tag)
        if tag == "node":
            node_id = element.get("id")
            if node_id is None:
                raise TopologyError("GraphML node without an id attribute")
            if node_id in labels:
                raise TopologyError(f"duplicate GraphML node id {node_id!r}")
            label: Optional[str] = None
            for key, value in _data_values(element).items():
                if attr_names.get(key) == "label" and value:
                    label = value
            ids.append(node_id)
            labels[node_id] = label
        elif tag == "edge":
            source, target = element.get("source"), element.get("target")
            if source is None or target is None:
                raise TopologyError("GraphML edge without source/target attributes")
            weight = 1.0
            values = _data_values(element)
            for attr in _WEIGHT_ATTRS:
                found = [
                    value for key, value in values.items()
                    if attr_names.get(key) == attr and value
                ]
                if found:
                    weight = _coerce_weight(
                        found[0], f"edge {source!r} -- {target!r}"
                    )
                    break
            edges.append((source, target, weight))

    if not ids:
        raise TopologyError("GraphML graph declares no nodes")
    undeclared = sorted(
        {endpoint for u, v, _ in edges for endpoint in (u, v)} - set(labels)
    )
    if undeclared:
        raise TopologyError(
            f"GraphML edges reference undeclared node ids {undeclared!r}"
        )

    # City labels are friendlier than numeric ids, but only usable when they
    # unambiguously name every node.
    label_values = [labels[node_id] for node_id in ids]
    if all(label_values) and len(set(label_values)) == len(label_values):
        display = {node_id: labels[node_id] for node_id in ids}
    else:
        display = {node_id: node_id for node_id in ids}

    graph = Graph(name)
    for node_id in ids:
        graph.ensure_node(display[node_id])
    seen_pairs = set()
    for source, target, weight in edges:
        u, v = display[source], display[target]
        if u == v:
            continue  # self-loop: meaningless at the router level
        if directed:
            pair = (u, v) if u <= v else (v, u)
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
        if graph.has_edge_between(u, v):
            if multi == "error":
                raise TopologyError(f"parallel link {u!r} -- {v!r} (multi='error')")
            if multi == "merge":
                # Collapse to the cheapest parallel link.
                [existing] = graph.edge_ids_between(u, v)
                if weight < graph.weight(existing):
                    graph.remove_edge(existing)
                    graph.add_edge(u, v, weight)
                continue
        graph.add_edge(u, v, weight)
    if graph.number_of_edges() == 0:
        raise TopologyError(f"GraphML graph {name!r} has no usable links")
    return graph


def load_graphml(
    path: Union[str, Path],
    name: Optional[str] = None,
    multi: str = "keep",
) -> Graph:
    """Load a GraphML topology file."""
    path = Path(path)
    return graph_from_graphml(path.read_text(), name=name or path.stem, multi=multi)
