"""Registry of the named topologies used by the experiment runners.

Since the corpus subsystem (:mod:`repro.topologies.corpus`) this module is a
thin compatibility facade: names resolve against the corpus family registry,
which also holds the parameterized synthetic generators and the committed
Topology Zoo snapshots.  :func:`by_name` keeps its historical contract —
case-insensitive lookup of a *parameter-free* build — while parameterized
instances go through :func:`repro.topologies.corpus.parse_topology_spec`.
"""

from __future__ import annotations

from typing import List

from repro.graph.multigraph import Graph
from repro.topologies import corpus


def available_topologies() -> List[str]:
    """Names accepted by :func:`by_name`, as a sorted copy.

    The list is rebuilt on every call (callers cannot mutate the registry
    through it) and sorted, so display order no longer leaks registration
    order.  Parameterized synthetic families are included — :func:`by_name`
    builds them with their declared defaults.
    """
    return corpus.family_names()


def by_name(name: str) -> Graph:
    """Build a topology by its registry name (case-insensitive).

    Unknown names raise :class:`~repro.errors.TopologyError` reporting the
    name exactly as it was attempted (original case preserved), so a
    case-mismatched or misspelled lookup is traceable to its call site.
    Parameterized families build with their declared defaults; pass a
    ``name:k=v,...`` spec through :func:`corpus.build_topology` to override.
    """
    family = corpus.get_family(name)
    spec = corpus.TopologySpec(
        family.name, tuple(sorted(family.default_params().items()))
    )
    return spec.build()
