"""Registry of the named topologies used by the experiment runners."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import TopologyError
from repro.graph.multigraph import Graph
from repro.topologies.abilene import abilene
from repro.topologies.example import example_fig1
from repro.topologies.geant import geant
from repro.topologies.teleglobe import teleglobe

_REGISTRY: Dict[str, Callable[[], Graph]] = {
    "abilene": abilene,
    "teleglobe": teleglobe,
    "geant": geant,
    "fig1-example": example_fig1,
}


def available_topologies() -> List[str]:
    """Names accepted by :func:`by_name`, in display order."""
    return list(_REGISTRY)


def by_name(name: str) -> Graph:
    """Build a topology by its registry name (case-insensitive)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise TopologyError(
            f"unknown topology {name!r}; available: {', '.join(available_topologies())}"
        )
    return _REGISTRY[key]()
