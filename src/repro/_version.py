"""Version of the Packet Re-cycling reproduction package."""

__version__ = "1.0.0"
