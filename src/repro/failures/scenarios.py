"""Failure scenario containers and exhaustive enumerators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import FailureScenarioError
from repro.graph.connectivity import is_connected
from repro.graph.multigraph import Graph
from repro.graph.spcache import engine_for
from repro.routing.tables import RoutingTables


@dataclass(frozen=True)
class FailureScenario:
    """One failure scenario: a set of simultaneously failed links.

    ``kind`` records how the scenario was produced ("single-link",
    "multi-link", "node", ...) purely for reporting purposes.
    """

    failed_links: Tuple[int, ...]
    kind: str = "custom"
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "failed_links", tuple(sorted(set(self.failed_links))))

    def __len__(self) -> int:
        return len(self.failed_links)

    def keeps_connected(self, graph: Graph) -> bool:
        """Whether the network stays connected under this scenario.

        Served by the shared engine's memoized component labels (equivalent
        to :func:`repro.graph.connectivity.is_connected`), so enumerators
        probing every link and every consumer re-checking the same scenario
        share one labelling per failure set.
        """
        return engine_for(graph).is_connected(self.failed_links)

    def describe(self, graph: Graph) -> str:
        """Human-readable description listing the failed links by endpoints."""
        parts = []
        for edge_id in self.failed_links:
            edge = graph.edge(edge_id)
            parts.append(f"{edge.u}--{edge.v}")
        label = self.description or self.kind
        return f"{label}: " + (", ".join(parts) if parts else "no failures")


def single_link_failures(graph: Graph, only_non_disconnecting: bool = False) -> List[FailureScenario]:
    """One scenario per link of the topology.

    With ``only_non_disconnecting=True`` bridges are skipped, since no scheme
    can recover traffic that must cross a failed bridge.
    """
    scenarios: List[FailureScenario] = []
    engine = engine_for(graph)
    for edge in graph.edges():
        scenario = FailureScenario((edge.edge_id,), kind="single-link")
        if only_non_disconnecting and not engine.is_connected(scenario.failed_links):
            continue
        scenarios.append(scenario)
    return scenarios


def node_failure_scenarios(
    graph: Graph,
    only_non_disconnecting: bool = False,
    exclude: Optional[Iterable[str]] = None,
) -> List[FailureScenario]:
    """One scenario per node: all links incident to the node fail together.

    The paper treats node failures as the simultaneous failure of the node's
    links; traffic sourced at or destined to the failed node is of course
    unrecoverable and excluded by the experiment's pair selection.
    """
    excluded_nodes = set(exclude or ())
    scenarios: List[FailureScenario] = []
    for node in graph.nodes():
        if node in excluded_nodes:
            continue
        incident = tuple(graph.incident_edge_ids(node))
        if not incident:
            continue
        scenario = FailureScenario(incident, kind="node", description=f"node {node}")
        if only_non_disconnecting:
            remainder = graph.without_edges(incident)
            remainder.remove_node(node)
            if remainder.number_of_nodes() > 0 and not is_connected(remainder):
                continue
        scenarios.append(scenario)
    return scenarios


def all_affecting_pairs(
    graph: Graph,
    scenario: FailureScenario,
    tables: Optional[RoutingTables] = None,
) -> List[Tuple[str, str]]:
    """Ordered (source, destination) pairs whose failure-free path is broken.

    This is the conditioning used for the Figure 2 CCDFs: stretch is measured
    only over pairs that actually need repairing (pairs whose shortest path
    does not touch a failed link have stretch exactly 1 under every scheme
    and would just compress the interesting part of the distribution).

    For the default failure-free tables the check runs on the shared
    shortest-path engine: the failure-free path of every pair is folded into
    an edge bitmask exactly once per topology (per process), and each
    scenario costs one bitmask AND per pair instead of a hop-by-hop table
    walk.  Caller-supplied tables with exclusions (or tables for another
    graph) fall back to the explicit walk below, which the equivalence suite
    keeps bit-identical to the fast path.
    """
    if tables is None or (tables.graph is graph and not tables.excluded_edges):
        return engine_for(graph).affecting_pairs(scenario.failed_links)
    failed = set(scenario.failed_links)
    pairs: List[Tuple[str, str]] = []
    for source in graph.nodes():
        for destination in graph.nodes():
            if source == destination or not tables.has_route(source, destination):
                continue
            node = source
            affected = False
            while node != destination:
                entry = tables.entry(node, destination)
                if entry.egress.edge_id in failed:
                    affected = True
                    break
                node = entry.next_hop
            if affected:
                pairs.append((source, destination))
    return pairs


def validate_scenario(graph: Graph, scenario: FailureScenario) -> None:
    """Check that every failed link id exists in the topology."""
    known = set(graph.edge_ids())
    unknown = [edge_id for edge_id in scenario.failed_links if edge_id not in known]
    if unknown:
        raise FailureScenarioError(
            f"scenario references unknown links {unknown!r} for topology {graph.name!r}"
        )
