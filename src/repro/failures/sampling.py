"""Random sampling of multi-link failure combinations.

The multi-failure panels of Figure 2 use 4 (Abilene), 10 (Teleglobe) and 16
(Géant) simultaneous link failures.  Exhaustive enumeration is hopeless at
those sizes, so scenarios are sampled uniformly among the k-subsets of links;
by default only combinations that keep the network connected are kept, since
that is the regime in which the paper's guarantee applies (pairs disconnected
by a scenario are skipped by the experiment anyway).
"""

from __future__ import annotations

import itertools
import random
from typing import List, Optional

from repro.errors import FailureScenarioError
from repro.failures.scenarios import FailureScenario
from repro.graph.connectivity import is_connected
from repro.graph.multigraph import Graph
from repro.graph.spcache import engine_for


def sample_multi_link_failures(
    graph: Graph,
    failures: int,
    samples: int,
    seed: Optional[int] = None,
    require_connected: bool = True,
    max_attempts_per_sample: int = 500,
    unique: bool = True,
) -> List[FailureScenario]:
    """Sample ``samples`` scenarios of ``failures`` simultaneous link failures.

    Parameters
    ----------
    require_connected:
        Keep only combinations that leave the network connected.
    unique:
        Avoid returning the same combination twice (best effort: if the
        topology does not have enough distinct combinations the result is
        shorter than ``samples``).
    max_attempts_per_sample:
        Rejection-sampling budget per requested scenario before giving up.
    """
    edge_ids = graph.edge_ids()
    if failures < 1:
        raise FailureScenarioError("at least one failure per scenario is required")
    if failures > len(edge_ids):
        raise FailureScenarioError(
            f"cannot fail {failures} links in a topology with {len(edge_ids)} links"
        )
    rng = random.Random(seed)
    # Rejection sampling runs one connectivity check per candidate; the
    # engine's component labelling is the fast (and memoized) equivalent of
    # :func:`repro.graph.connectivity.is_connected`.
    engine = engine_for(graph)
    scenarios: List[FailureScenario] = []
    seen: set = set()
    attempts_left = samples * max_attempts_per_sample
    while len(scenarios) < samples and attempts_left > 0:
        attempts_left -= 1
        combination = tuple(sorted(rng.sample(edge_ids, failures)))
        if unique and combination in seen:
            continue
        if require_connected and not engine.is_connected(combination):
            if unique:
                seen.add(combination)
            continue
        seen.add(combination)
        scenarios.append(
            FailureScenario(combination, kind="multi-link", description=f"{failures} failures")
        )
    return scenarios


def all_multi_link_failures(
    graph: Graph,
    failures: int,
    require_connected: bool = True,
    limit: Optional[int] = None,
) -> List[FailureScenario]:
    """Exhaustive enumeration of k-failure combinations (small topologies only).

    ``limit`` bounds the number of returned scenarios; enumeration stops once
    it is reached, which keeps the dual-failure sweeps on Abilene cheap.
    """
    scenarios: List[FailureScenario] = []
    for combination in itertools.combinations(graph.edge_ids(), failures):
        if require_connected and not is_connected(graph, combination):
            continue
        scenarios.append(FailureScenario(combination, kind="multi-link"))
        if limit is not None and len(scenarios) >= limit:
            break
    return scenarios
