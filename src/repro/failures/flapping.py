"""Link flapping: intermittent failures and the hold-down counter-measure.

Section 7: "As with all alternate forwarding schemes, PR must cater for the
possibility of link flapping.  This can be done simply by ensuring that link
state transitions only happen after the link has been idle for long enough to
ensure that packets that encountered the link in its failed state do not
encounter it again in its normal state while cycle following."

:class:`LinkFlappingProcess` generates an up/down event timeline for one link
and :func:`hold_down_filter` applies exactly that counter-measure: a link is
only re-announced as up after it has stayed up for a configurable hold-down
time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class FlapEvent:
    """One link state transition."""

    time: float
    #: ``True`` when the link comes up at ``time``, ``False`` when it goes down.
    up: bool


class LinkFlappingProcess:
    """Alternating up/down periods with exponentially distributed durations."""

    def __init__(
        self,
        mean_up_time: float,
        mean_down_time: float,
        seed: Optional[int] = None,
        initially_up: bool = True,
    ) -> None:
        if mean_up_time <= 0 or mean_down_time <= 0:
            raise ValueError("mean up/down times must be positive")
        self.mean_up_time = mean_up_time
        self.mean_down_time = mean_down_time
        self.initially_up = initially_up
        self._rng = random.Random(seed)

    def events_until(self, horizon: float) -> List[FlapEvent]:
        """State transitions in ``[0, horizon)``, starting from the initial state."""
        events: List[FlapEvent] = []
        time = 0.0
        up = self.initially_up
        while True:
            mean = self.mean_up_time if up else self.mean_down_time
            time += self._rng.expovariate(1.0 / mean)
            if time >= horizon:
                break
            up = not up
            events.append(FlapEvent(time=time, up=up))
        return events

    def downtime_fraction(self, horizon: float) -> float:
        """Fraction of ``[0, horizon)`` the link spends down (one sample path)."""
        events = self.events_until(horizon)
        down_total = 0.0
        state_up = self.initially_up
        last_time = 0.0
        for event in events:
            if not state_up:
                down_total += event.time - last_time
            state_up = event.up
            last_time = event.time
        if not state_up:
            down_total += horizon - last_time
        return down_total / horizon if horizon > 0 else 0.0


def hold_down_filter(events: List[FlapEvent], hold_down: float, horizon: float) -> List[FlapEvent]:
    """Suppress up-transitions that do not survive a hold-down period.

    The returned timeline is what the routing/PR control plane *acts on*: a
    link is declared up only once it has been continuously up for
    ``hold_down`` seconds, while down transitions are propagated immediately
    (failure detection must stay fast).  This removes the pathological case
    the paper warns about — a packet that saw the link down re-encountering
    it up mid-cycle-following — at the cost of advertising slightly less
    capacity during unstable periods.
    """
    filtered: List[FlapEvent] = []
    advertised_up = True
    index = 0
    events = sorted(events, key=lambda event: event.time)
    while index < len(events):
        event = events[index]
        if not event.up:
            if advertised_up:
                filtered.append(event)
                advertised_up = False
            index += 1
            continue
        # Up transition: find out whether the link stays up for the hold-down
        # period (i.e. no down transition within [event.time, event.time + hold_down)).
        next_down_time = None
        for later in events[index + 1:]:
            if not later.up:
                next_down_time = later.time
                break
        stays_up_until = next_down_time if next_down_time is not None else horizon
        if stays_up_until - event.time >= hold_down:
            announce_at = event.time + hold_down
            if announce_at < horizon and not advertised_up:
                filtered.append(FlapEvent(time=announce_at, up=True))
                advertised_up = True
        index += 1
    return filtered
