"""Failure scenarios: enumeration, sampling and link flapping.

Figure 2 evaluates "different failure scenarios": every single link failure,
and random combinations of 4 / 10 / 16 simultaneous failures on Abilene /
Teleglobe / Géant respectively.  The samplers here generate those scenarios,
restricted (when asked) to combinations that keep the network connected —
the regime in which the paper guarantees recovery.  The flapping model backs
the Section 7 discussion about links that oscillate between up and down.
"""

from repro.failures.scenarios import (
    FailureScenario,
    all_affecting_pairs,
    node_failure_scenarios,
    single_link_failures,
)
from repro.failures.sampling import sample_multi_link_failures
from repro.failures.flapping import FlapEvent, LinkFlappingProcess, hold_down_filter

__all__ = [
    "FailureScenario",
    "all_affecting_pairs",
    "node_failure_scenarios",
    "single_link_failures",
    "sample_multi_link_failures",
    "FlapEvent",
    "LinkFlappingProcess",
    "hold_down_filter",
]
