"""Repair-coverage analysis.

The paper's headline claim is that PR "can guarantee full repair coverage for
any number of failures, as long as the network remains connected".  This
module measures that claim empirically for any scheme: enumerate (or sample)
failure scenarios, send a packet between every ordered pair of routers that
is still connected, and classify the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.forwarding.engine import DeliveryStatus
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.connectivity import same_component
from repro.graph.multigraph import Graph


@dataclass
class CoverageReport:
    """Aggregate delivery statistics of one scheme over many scenarios."""

    scheme: str
    attempts: int = 0
    delivered: int = 0
    dropped: int = 0
    looped: int = 0
    unreachable_pairs_skipped: int = 0
    drop_reasons: Dict[str, int] = field(default_factory=dict)
    failures_by_scenario: Dict[Tuple[int, ...], int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of reachable (source, destination, scenario) triples delivered."""
        if self.attempts == 0:
            return 1.0
        return self.delivered / self.attempts

    @property
    def full_coverage(self) -> bool:
        """Whether every packet with an existing path was delivered."""
        return self.delivered == self.attempts

    def record(self, status: DeliveryStatus, scenario: Tuple[int, ...], reason: Optional[str]) -> None:
        """Account one forwarding outcome."""
        self.attempts += 1
        if status is DeliveryStatus.DELIVERED:
            self.delivered += 1
            return
        if status is DeliveryStatus.TTL_EXCEEDED:
            self.looped += 1
        else:
            self.dropped += 1
        if reason:
            self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1
        self.failures_by_scenario[scenario] = self.failures_by_scenario.get(scenario, 0) + 1

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.scheme}: {self.delivered}/{self.attempts} delivered "
            f"({100.0 * self.coverage:.2f}%), {self.dropped} dropped, {self.looped} looped"
        )


def reachable_pairs(
    graph: Graph,
    failed_links: Iterable[int],
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
) -> List[Tuple[str, str]]:
    """Ordered (source, destination) pairs still connected under the failures."""
    failed = frozenset(failed_links)
    if pairs is None:
        nodes = graph.nodes()
        pairs = [(s, d) for s in nodes for d in nodes if s != d]
    return [
        (source, destination)
        for source, destination in pairs
        if same_component(graph, source, destination, failed)
    ]


def coverage_report(
    scheme: ForwardingScheme,
    scenarios: Iterable[Sequence[int]],
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
) -> CoverageReport:
    """Measure delivery coverage of ``scheme`` over the given failure scenarios.

    Only (source, destination) pairs for which a path still exists are
    attempted — pairs cut off by the failures are counted separately, since
    no scheme can deliver those.
    """
    graph = scheme.graph
    report = CoverageReport(scheme=scheme.name)
    for scenario in scenarios:
        scenario_key = tuple(sorted(scenario))
        usable = reachable_pairs(graph, scenario_key, pairs)
        all_pairs = (
            pairs
            if pairs is not None
            else [(s, d) for s in graph.nodes() for d in graph.nodes() if s != d]
        )
        report.unreachable_pairs_skipped += len(all_pairs) - len(usable)
        outcomes = scheme.deliver_many(usable, failed_links=scenario_key)
        for (_source, _destination), outcome in outcomes.items():
            report.record(outcome.status, scenario_key, outcome.drop_reason)
    return report
