"""Multi-homed prefix protection: the inter-domain extension of Section 7.

"Multihomed ISPs that receive several announcements for the same prefix via
different outgoing links can map this onto a connectivity graph, and use our
technique to obtain cycle following routes."

The construction here is the straightforward reading of that sketch: every
external prefix announced at several egress routers becomes a *virtual node*
attached to each announcing egress with a link whose weight reflects the
preference of that exit (e.g. the BGP MED or the IGP cost to the next hop).
Packet Re-cycling then runs on the augmented graph unchanged — a failure of
the preferred egress link (a peering going down or the announcement being
withdrawn) is just another link failure, recovered over the complementary
cycle towards another egress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.scheme import PacketRecycling
from repro.embedding.builder import CellularEmbedding
from repro.errors import TopologyError
from repro.forwarding.engine import ForwardingOutcome
from repro.graph.multigraph import Graph
from repro.routing.discriminator import DiscriminatorKind


@dataclass(frozen=True)
class MultihomedPrefix:
    """One external prefix and the egress routers announcing it.

    Attributes
    ----------
    name:
        Identifier of the prefix (used as the virtual node name, prefixed
        with ``prefix:`` to avoid clashing with router names).
    egresses:
        ``(egress router, exit cost)`` pairs; at least two for the
        multi-homing case the paper describes (a single-homed prefix is
        allowed but cannot be protected against the loss of its only exit).
    """

    name: str
    egresses: Tuple[Tuple[str, float], ...]

    @property
    def virtual_node(self) -> str:
        """Name of the virtual node representing the prefix."""
        return f"prefix:{self.name}"

    @property
    def egress_routers(self) -> Tuple[str, ...]:
        return tuple(router for router, _cost in self.egresses)


def augment_with_prefixes(
    graph: Graph, prefixes: Sequence[MultihomedPrefix]
) -> Tuple[Graph, Dict[Tuple[str, str], int]]:
    """Build the connectivity graph of Section 7.

    Returns the augmented copy of ``graph`` plus a mapping
    ``(prefix name, egress router) -> virtual edge id`` so that announcement
    withdrawals can be expressed as failures of the corresponding virtual
    link.
    """
    augmented = graph.copy(name=f"{graph.name}+prefixes")
    egress_edges: Dict[Tuple[str, str], int] = {}
    for prefix in prefixes:
        if not prefix.egresses:
            raise TopologyError(f"prefix {prefix.name!r} has no egress routers")
        virtual = prefix.virtual_node
        if augmented.has_node(virtual):
            raise TopologyError(f"duplicate prefix {prefix.name!r}")
        augmented.ensure_node(virtual)
        for router, cost in prefix.egresses:
            if not graph.has_node(router):
                raise TopologyError(
                    f"egress router {router!r} of prefix {prefix.name!r} is not in the topology"
                )
            edge_id = augmented.add_edge(router, virtual, max(1.0, float(cost)))
            egress_edges[(prefix.name, router)] = edge_id
    return augmented, egress_edges


class InterdomainPacketRecycling:
    """Packet Re-cycling over the intra-domain topology plus virtual prefixes."""

    def __init__(
        self,
        graph: Graph,
        prefixes: Sequence[MultihomedPrefix],
        discriminator_kind: DiscriminatorKind = DiscriminatorKind.HOP_COUNT,
        embedding: Optional[CellularEmbedding] = None,
        embedding_seed: Optional[int] = 0,
    ) -> None:
        self.base_graph = graph
        self.prefixes = {prefix.name: prefix for prefix in prefixes}
        self.graph, self._egress_edges = augment_with_prefixes(graph, prefixes)
        self.scheme = PacketRecycling(
            self.graph,
            embedding=embedding,
            discriminator_kind=discriminator_kind,
            embedding_seed=embedding_seed,
        )

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------
    def egress_edge(self, prefix_name: str, egress_router: str) -> int:
        """Virtual link id of one (prefix, egress) announcement."""
        try:
            return self._egress_edges[(prefix_name, egress_router)]
        except KeyError:
            raise TopologyError(
                f"prefix {prefix_name!r} is not announced at router {egress_router!r}"
            ) from None

    def preferred_egress(self, source: str, prefix_name: str) -> str:
        """Egress router the failure-free shortest path to the prefix exits at."""
        prefix = self._prefix(prefix_name)
        path = self.scheme.routing.shortest_path(source, prefix.virtual_node)
        return path[-2]

    def _prefix(self, prefix_name: str) -> MultihomedPrefix:
        try:
            return self.prefixes[prefix_name]
        except KeyError:
            raise TopologyError(f"unknown prefix {prefix_name!r}") from None

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------
    def deliver(
        self,
        source: str,
        prefix_name: str,
        failed_links: Iterable[int] = (),
        withdrawn_egresses: Iterable[str] = (),
    ) -> ForwardingOutcome:
        """Send a packet from ``source`` to an external prefix.

        ``failed_links`` are intra-domain link failures (edge ids of the base
        topology); ``withdrawn_egresses`` are routers whose announcement for
        this prefix has been withdrawn (or whose peering link has failed),
        modelled as failures of the corresponding virtual links.
        """
        prefix = self._prefix(prefix_name)
        failures: List[int] = list(failed_links)
        for router in withdrawn_egresses:
            failures.append(self.egress_edge(prefix_name, router))
        return self.scheme.deliver(source, prefix.virtual_node, failed_links=failures)

    def exit_router(self, outcome: ForwardingOutcome) -> Optional[str]:
        """The egress router a delivered packet actually left the domain through."""
        if not outcome.delivered or len(outcome.path) < 2:
            return None
        return outcome.path[-2]

    def header_overhead_bits(self) -> int:
        """Header budget of the augmented (prefix-aware) deployment."""
        return self.scheme.header_overhead_bits()
