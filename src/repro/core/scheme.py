"""Packet Re-cycling packaged as a :class:`ForwardingScheme`.

These wrappers bundle the offline stage (embedding → cycle following tables,
shortest paths → routing tables with the DD column) with the forwarding-time
logic, and expose the overhead accounting used by the evaluation section.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro import telemetry
from repro.core.protocol import PacketRecyclingLogic, SimplePacketRecyclingLogic
from repro.core.tables import CycleFollowingTables
from repro.embedding.builder import CellularEmbedding, embed
from repro.errors import NoPathExists, ProtocolError
from repro.forwarding.engine import DeliveryStatus, ForwardingOutcome
from repro.forwarding.network_state import NetworkState
from repro.forwarding.router import RouterLogic
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.multigraph import Graph
from repro.graph.spcache import engine_for
from repro.routing.discriminator import DiscriminatorKind, discriminator_bits_required
from repro.routing.tables import cached_routing_tables


class PacketRecycling(ForwardingScheme):
    """The full Packet Re-cycling scheme (Section 4.3).

    Parameters
    ----------
    graph:
        Connected network topology.
    embedding:
        Precomputed cellular embedding; computed with the default heuristics
        when omitted (this mirrors the paper's offline server step).
    discriminator_kind:
        Which distance discriminator the DD bits carry (hop count by
        default, matching the paper's examples).
    embedding_method, embedding_seed:
        Forwarded to :func:`repro.embedding.embed` when the embedding is not
        supplied.
    """

    name = "Packet Re-cycling"

    def __init__(
        self,
        graph: Graph,
        embedding: Optional[CellularEmbedding] = None,
        discriminator_kind: DiscriminatorKind = DiscriminatorKind.HOP_COUNT,
        embedding_method: str = "auto",
        embedding_seed: Optional[int] = None,
    ) -> None:
        super().__init__(graph)
        self.embedding = embedding if embedding is not None else embed(
            graph, method=embedding_method, seed=embedding_seed
        )
        self.discriminator_kind = discriminator_kind
        self.routing = cached_routing_tables(graph, discriminator_kind)
        self.cycle_tables = CycleFollowingTables(self.embedding)
        # Flattened lookup tables for the deliver_many fast path, built
        # lazily because ``deliver`` (the engine reference path) never needs
        # them.
        self._flat_cycle_next: Optional[Dict] = None
        self._flat_avoid_next: Optional[Dict] = None
        self._flat_degree_of: Optional[Dict] = None
        self._flat_weight_of: Optional[Dict] = None
        # Cross-scenario outcome memo: pair -> [(touched_mask, pattern,
        # outcome)].  A walk's decisions depend on the failure set only
        # through "is edge e failed?" tests; ``touched_mask`` records exactly
        # which edges were tested, so the outcome is valid for *any* scenario
        # that agrees with ``pattern`` on those edges.  Shared engine-wide
        # between instances with identical offline state (embedding rotation,
        # discriminator, protocol variant), so repeated campaign cells and
        # re-runs on one topology reuse each other's walks.
        self._outcome_memo: Optional[Dict] = None

    #: Set by the 1-bit subclass: selects the Section 4.2 termination rule
    #: in the deliver_many fast path.
    _walk_simple = False

    def build_logic(self, state: NetworkState) -> RouterLogic:
        return PacketRecyclingLogic(self.routing, self.cycle_tables, state)

    def _flat_tables(self) -> tuple:
        """Per-dart cycle-following and failure-avoidance successor maps.

        Ingress darts are globally unique, so both three-column tables of
        every router flatten into two dicts keyed by dart.
        """
        if self._flat_cycle_next is None:
            # Values carry the successor dart together with its step info
            # (edge bitmask, weight, head), so one dict lookup answers both
            # "where next" and "what does that hop cost".
            def step(dart) -> tuple:
                return (dart, 1 << dart.edge_id, self.graph.weight(dart.edge_id), dart.head)

            cycle_next: Dict = {}
            for node in self.graph.nodes():
                table = self.cycle_tables.table_at(node)
                for ingress, row in table._rows.items():
                    cycle_next[ingress] = step(row.cycle_following)
            avoid_next: Dict = {
                dart: step(self.cycle_tables.embedding.complementary_next(dart))
                for dart in self.graph.darts()
            }
            self._flat_cycle_next = cycle_next
            self._flat_avoid_next = avoid_next
            self._flat_degree_of = {
                node: self.graph.degree(node) for node in self.graph.nodes()
            }
            self._flat_weight_of = {
                edge.edge_id: edge.weight for edge in self.graph.edges()
            }
        return (
            self._flat_cycle_next,
            self._flat_avoid_next,
            self._flat_degree_of,
            self._flat_weight_of,
        )

    def deliver_many(
        self,
        pairs: Iterable[tuple],
        failed_links: Iterable[int] = (),
    ) -> Dict[tuple, ForwardingOutcome]:
        """Sweep fast path: run the PR forwarding loop without the engine.

        Replicates :class:`~repro.core.protocol.PacketRecyclingLogic` (or the
        1-bit variant) plus the hop-by-hop engine bookkeeping in one flat
        loop over dict lookups — identical paths, costs, counters, drop
        reasons and header evolution (asserted by the fast-path equivalence
        tests).  :meth:`ForwardingScheme.deliver` still runs the real engine
        and remains the reference implementation.
        """
        state = NetworkState(self.graph, failed_links)  # validates the ids
        failed_mask = 0
        for edge_id in state.failed_edges:
            failed_mask |= 1 << edge_id
        routing_entries = self.routing._entries
        cycle_next, avoid_next, degree_of, weight_of = self._flat_tables()
        ttl_budget = self.default_ttl()
        simple = self._walk_simple
        memo = self._outcome_memo
        if memo is None:
            engine = engine_for(self.graph)
            rotation = self.embedding.rotation
            token = (
                "pr-outcomes",
                self._walk_simple,
                self.discriminator_kind,
                tuple(
                    (node, tuple(darts))
                    for node, darts in sorted(rotation.as_mapping().items())
                ),
            )
            memo = engine.consumer_cache.get_or_none(token)
            if memo is None:
                memo = {}
                engine.consumer_cache.put(token, memo)
            self._outcome_memo = memo
        memo_hits = 0
        outcomes: Dict[tuple, ForwardingOutcome] = {}
        for pair in pairs:
            source, destination = pair
            entries_for_pair = memo.get(pair)
            if entries_for_pair is not None:
                hit = None
                for touched_mask, pattern, cached in entries_for_pair:
                    if failed_mask & touched_mask == pattern:
                        hit = cached
                        break
                if hit is not None:
                    memo_hits += 1
                    outcomes[pair] = hit
                    continue
            node = source
            ingress = None
            pr_bit = False
            dd_value: Optional[float] = None
            path = [node]
            cost = 0.0
            ttl = ttl_budget
            n_detected = 0
            n_recycled = 0
            n_cycle_hops = 0
            status = None
            drop_reason = None
            egress = None
            touched = 0
            while True:
                if node == destination:
                    status = DeliveryStatus.DELIVERED
                    break
                if ttl <= 0:
                    status = DeliveryStatus.TTL_EXCEEDED
                    drop_reason = "ttl expired"
                    break
                # --- the router's decision (protocol.py, inlined) ---
                while True:
                    if not pr_bit:
                        # _route_normally (``get`` on the outer dict so an
                        # unknown source drops like the engine, not KeyError)
                        node_entries = routing_entries.get(node)
                        entry = node_entries.get(destination) if node_entries else None
                        if entry is None:
                            status = DeliveryStatus.DROPPED
                            drop_reason = "no route to destination in routing table"
                            break
                        egress = entry.egress
                        edge_bit = 1 << egress.edge_id
                        touched |= edge_bit
                        if not failed_mask & edge_bit:
                            hop_weight = weight_of[egress.edge_id]
                            hop_head = egress.head
                            break  # plain shortest-path forward, no counters
                        # _start_recycling: mark the header, then failure
                        # avoidance from the failed egress.
                        pr_bit = True
                        dd_value = None if simple else entry.discriminator
                        candidate = egress
                        backup = None
                        for _attempt in range(degree_of[node]):
                            candidate, edge_bit, hop_weight, hop_head = avoid_next[candidate]
                            touched |= edge_bit
                            if not failed_mask & edge_bit:
                                backup = candidate
                                break
                        n_detected += 1
                        if backup is None:
                            status = DeliveryStatus.DROPPED
                            drop_reason = "all interfaces failed at the detecting router"
                            break
                        n_recycled += 1
                        egress = backup
                        break
                    # _cycle_follow
                    cycle_step = cycle_next.get(ingress)
                    if cycle_step is None:  # pragma: no cover - mirrors row_for_ingress
                        raise ProtocolError(
                            f"router {node!r} has no cycle-following row for "
                            f"ingress {ingress!r}"
                        )
                    outgoing, edge_bit, hop_weight, hop_head = cycle_step
                    touched |= edge_bit
                    if not failed_mask & edge_bit:
                        n_cycle_hops += 1
                        egress = outgoing
                        break
                    if simple:
                        # Section 4.2 termination: resume shortest-path routing.
                        pr_bit = False
                        dd_value = None
                        continue
                    entry = routing_entries[node].get(destination)
                    if entry is None:
                        raise NoPathExists(node, destination)
                    if entry.discriminator < dd_value:
                        # Section 4.3 termination: strictly closer than the
                        # marking router — resume shortest-path routing.
                        pr_bit = False
                        dd_value = None
                        continue
                    candidate = outgoing
                    backup = None
                    for _attempt in range(degree_of[node]):
                        candidate, edge_bit, hop_weight, hop_head = avoid_next[candidate]
                        touched |= edge_bit
                        if not failed_mask & edge_bit:
                            backup = candidate
                            break
                    n_detected += 1
                    if backup is None:
                        status = DeliveryStatus.DROPPED
                        drop_reason = "all interfaces failed while cycle following"
                        break
                    n_cycle_hops += 1
                    egress = backup
                    break
                if status is not None:
                    break
                # --- hop bookkeeping (engine, inlined) ---
                cost += hop_weight
                ttl -= 1
                ingress = egress
                node = hop_head
                path.append(hop_head)
            # Engine equivalence: a counter key exists exactly when at least
            # one decision carried it (PR decisions never carry zeros).
            counters: Dict[str, float] = {}
            if n_detected:
                counters["failures_detected"] = float(n_detected)
            if n_recycled:
                counters["recycling_started"] = float(n_recycled)
            if n_cycle_hops:
                counters["cycle_following_hops"] = float(n_cycle_hops)
            outcome = ForwardingOutcome(
                source=source,
                destination=destination,
                status=status,
                path=path,
                cost=cost,
                hops=len(path) - 1,
                drop_reason=drop_reason,
                counters=counters,
            )
            outcomes[pair] = outcome
            if entries_for_pair is None:
                memo[pair] = [(touched, failed_mask & touched, outcome)]
            elif len(entries_for_pair) < 64:
                entries_for_pair.append((touched, failed_mask & touched, outcome))
        if outcomes:
            telemetry.count("outcome_memo/hits", memo_hits)
            telemetry.count("outcome_memo/misses", len(outcomes) - memo_hits)
        return outcomes

    # ------------------------------------------------------------------
    # overhead accounting (Section 6)
    # ------------------------------------------------------------------
    def dd_bits(self) -> int:
        """Width of the DD field for this topology and discriminator."""
        return discriminator_bits_required(self.graph, self.discriminator_kind)

    def header_overhead_bits(self) -> int:
        """PR bit plus the DD bits — the paper's 1 + O(log2 d) bits."""
        return 1 + self.dd_bits()

    def router_memory_entries(self) -> int:
        """Cycle-following entries plus the extra DD column in the routing table."""
        dd_column_entries = self.routing.memory_entries()
        return self.cycle_tables.memory_entries() + dd_column_entries

    def online_computation_per_failure(self) -> int:
        """Route recomputations a router performs when a failure arrives: none."""
        return 0


class SimplePacketRecycling(PacketRecycling):
    """The one-bit protocol of Section 4.2 (single-failure coverage only)."""

    name = "Packet Re-cycling (1-bit)"
    _walk_simple = True

    def build_logic(self, state: NetworkState) -> RouterLogic:
        return SimplePacketRecyclingLogic(self.routing, self.cycle_tables, state)

    def header_overhead_bits(self) -> int:
        """A single bit: the PR bit."""
        return 1
