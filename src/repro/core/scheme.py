"""Packet Re-cycling packaged as a :class:`ForwardingScheme`.

These wrappers bundle the offline stage (embedding → cycle following tables,
shortest paths → routing tables with the DD column) with the forwarding-time
logic, and expose the overhead accounting used by the evaluation section.
"""

from __future__ import annotations

from typing import Optional

from repro.core.protocol import PacketRecyclingLogic, SimplePacketRecyclingLogic
from repro.core.tables import CycleFollowingTables
from repro.embedding.builder import CellularEmbedding, embed
from repro.forwarding.network_state import NetworkState
from repro.forwarding.router import RouterLogic
from repro.forwarding.scheme import ForwardingScheme
from repro.graph.multigraph import Graph
from repro.routing.discriminator import DiscriminatorKind, discriminator_bits_required
from repro.routing.tables import RoutingTables


class PacketRecycling(ForwardingScheme):
    """The full Packet Re-cycling scheme (Section 4.3).

    Parameters
    ----------
    graph:
        Connected network topology.
    embedding:
        Precomputed cellular embedding; computed with the default heuristics
        when omitted (this mirrors the paper's offline server step).
    discriminator_kind:
        Which distance discriminator the DD bits carry (hop count by
        default, matching the paper's examples).
    embedding_method, embedding_seed:
        Forwarded to :func:`repro.embedding.embed` when the embedding is not
        supplied.
    """

    name = "Packet Re-cycling"

    def __init__(
        self,
        graph: Graph,
        embedding: Optional[CellularEmbedding] = None,
        discriminator_kind: DiscriminatorKind = DiscriminatorKind.HOP_COUNT,
        embedding_method: str = "auto",
        embedding_seed: Optional[int] = None,
    ) -> None:
        super().__init__(graph)
        self.embedding = embedding if embedding is not None else embed(
            graph, method=embedding_method, seed=embedding_seed
        )
        self.discriminator_kind = discriminator_kind
        self.routing = RoutingTables(graph, discriminator_kind)
        self.cycle_tables = CycleFollowingTables(self.embedding)

    def build_logic(self, state: NetworkState) -> RouterLogic:
        return PacketRecyclingLogic(self.routing, self.cycle_tables, state)

    # ------------------------------------------------------------------
    # overhead accounting (Section 6)
    # ------------------------------------------------------------------
    def dd_bits(self) -> int:
        """Width of the DD field for this topology and discriminator."""
        return discriminator_bits_required(self.graph, self.discriminator_kind)

    def header_overhead_bits(self) -> int:
        """PR bit plus the DD bits — the paper's 1 + O(log2 d) bits."""
        return 1 + self.dd_bits()

    def router_memory_entries(self) -> int:
        """Cycle-following entries plus the extra DD column in the routing table."""
        dd_column_entries = self.routing.memory_entries()
        return self.cycle_tables.memory_entries() + dd_column_entries

    def online_computation_per_failure(self) -> int:
        """Route recomputations a router performs when a failure arrives: none."""
        return 0


class SimplePacketRecycling(PacketRecycling):
    """The one-bit protocol of Section 4.2 (single-failure coverage only)."""

    name = "Packet Re-cycling (1-bit)"

    def build_logic(self, state: NetworkState) -> RouterLogic:
        return SimplePacketRecyclingLogic(self.routing, self.cycle_tables, state)

    def header_overhead_bits(self) -> int:
        """A single bit: the PR bit."""
        return 1
