"""The Packet Re-cycling forwarding protocol (Sections 4.2 and 4.3).

Two router logics are provided:

* :class:`SimplePacketRecyclingLogic` — the one-bit protocol of Section 4.2.
  It guarantees recovery from any *single* link failure in 2-connected
  networks but, as the paper shows with Figure 1(c), can loop forever under
  some multi-failure combinations.
* :class:`PacketRecyclingLogic` — the full protocol with the
  decreasing-distance termination condition of Section 4.3, which recovers
  from *any* combination of link failures that leaves the network connected.

Both logics make strictly local decisions: the only inputs of a decision are
the failure state of the router's own interfaces, the precomputed
failure-free routing table, the precomputed cycle following table and the two
header fields (PR bit, DD bits).
"""

from __future__ import annotations

from typing import Optional

from repro.core.tables import CycleFollowingTables
from repro.errors import ProtocolError
from repro.forwarding.network_state import NetworkState
from repro.forwarding.packets import Packet
from repro.forwarding.router import ForwardingDecision, RouterLogic
from repro.graph.darts import Dart
from repro.routing.tables import RoutingTables


class _PacketRecyclingBase(RouterLogic):
    """State shared by both protocol variants."""

    def __init__(
        self,
        routing: RoutingTables,
        cycle_tables: CycleFollowingTables,
        state: NetworkState,
    ) -> None:
        self.routing = routing
        self.cycle_tables = cycle_tables
        self.state = state

    # ------------------------------------------------------------------
    # shared building blocks
    # ------------------------------------------------------------------
    def _routing_egress(self, node: str, destination: str) -> Optional[Dart]:
        """Failure-free routing table egress, or ``None`` if no route exists."""
        if not self.routing.has_route(node, destination):
            return None
        return self.routing.egress(node, destination)

    def _follow_complementary(
        self, node: str, failed_outgoing: Dart
    ) -> Optional[Dart]:
        """First usable interface found by repeated failure avoidance.

        The complementary next hop of a failed interface may itself be down;
        the protocol then treats that as a further failure met while cycle
        following at the same router and applies failure avoidance again
        (the DD comparison is a no-op at this point because the router's own
        discriminator cannot be smaller than the one it just wrote).  After
        one full turn of the rotation every interface has been tried and the
        router is isolated.
        """
        candidate = failed_outgoing
        for _attempt in range(self.state.graph.degree(node)):
            candidate = self.cycle_tables.failure_avoidance_next(node, candidate)
            if self.state.dart_usable(candidate):
                return candidate
        return None

    def _route_normally(self, node: str, packet: Packet) -> ForwardingDecision:
        """Shortest-path forwarding, falling back to PR when the egress is down."""
        destination = packet.header.destination
        egress = self._routing_egress(node, destination)
        if egress is None:
            return ForwardingDecision.drop("no route to destination in routing table")
        if self.state.dart_usable(egress):
            return ForwardingDecision.forward(egress)
        return self._start_recycling(node, egress, packet)

    def _start_recycling(
        self, node: str, failed_egress: Dart, packet: Packet
    ) -> ForwardingDecision:
        """Failure detected while routing: mark the packet and begin cycle following."""
        self._mark(node, packet)
        backup = self._follow_complementary(node, failed_egress)
        if backup is None:
            return ForwardingDecision.drop(
                "all interfaces failed at the detecting router", failures_detected=1
            )
        return ForwardingDecision.forward(backup, failures_detected=1, recycling_started=1)

    def _mark(self, node: str, packet: Packet) -> None:
        """Set the header fields when a failure is first detected (subclass hook)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # RouterLogic interface
    # ------------------------------------------------------------------
    def decide(
        self,
        node: str,
        ingress: Optional[Dart],
        packet: Packet,
        state: NetworkState,
    ) -> ForwardingDecision:
        if state is not self.state:
            raise ProtocolError("router logic was built for a different network state")
        if not packet.header.pr_bit:
            return self._route_normally(node, packet)
        if ingress is None:
            raise ProtocolError("a packet cannot originate with the PR bit already set")
        return self._cycle_follow(node, ingress, packet)

    def _cycle_follow(self, node: str, ingress: Dart, packet: Packet) -> ForwardingDecision:
        raise NotImplementedError


class SimplePacketRecyclingLogic(_PacketRecyclingBase):
    """The one-bit protocol of Section 4.2.

    A marked packet is forwarded along the cycle following column; when the
    cycle-following interface is down the router interprets this as the
    termination signal, clears the PR bit and resumes shortest-path routing
    (which may in turn detect a new failure and re-mark the packet).
    """

    name = "Packet Re-cycling (1-bit)"

    def _mark(self, node: str, packet: Packet) -> None:
        packet.header.mark_recycling(dd_value=0.0)
        packet.header.dd_value = None  # the simple protocol has no DD bits

    def _cycle_follow(self, node: str, ingress: Dart, packet: Packet) -> ForwardingDecision:
        outgoing = self.cycle_tables.cycle_following_next(node, ingress)
        if self.state.dart_usable(outgoing):
            return ForwardingDecision.forward(outgoing, cycle_following_hops=1)
        # Termination condition: the failure is encountered again (or another
        # failure is hit) — resume shortest-path routing.
        packet.header.clear_recycling()
        return self._route_normally(node, packet)


class PacketRecyclingLogic(_PacketRecyclingBase):
    """The full protocol with the decreasing-distance termination condition.

    Section 4.3: the first failure-detecting router writes its own distance
    discriminator to the destination into the DD bits.  A router that meets a
    further failure while cycle following compares its own discriminator with
    the DD bits: strictly smaller → clear the PR bit and resume shortest-path
    routing; larger or equal → keep cycle following along the complementary
    cycle of the newly failed interface.
    """

    name = "Packet Re-cycling"

    def _mark(self, node: str, packet: Packet) -> None:
        destination = packet.header.destination
        packet.header.mark_recycling(self.routing.discriminator(node, destination))

    def _cycle_follow(self, node: str, ingress: Dart, packet: Packet) -> ForwardingDecision:
        outgoing = self.cycle_tables.cycle_following_next(node, ingress)
        if self.state.dart_usable(outgoing):
            return ForwardingDecision.forward(outgoing, cycle_following_hops=1)

        destination = packet.header.destination
        own = self.routing.discriminator(node, destination)
        in_packet = packet.header.dd_value
        if in_packet is None:
            raise ProtocolError("marked packet carries no distance discriminator")

        if own < in_packet:
            # Termination: this router is strictly closer to the destination
            # than the router that marked the packet.
            packet.header.clear_recycling()
            return self._route_normally(node, packet)

        backup = self._follow_complementary(node, outgoing)
        if backup is None:
            return ForwardingDecision.drop(
                "all interfaces failed while cycle following", failures_detected=1
            )
        return ForwardingDecision.forward(backup, failures_detected=1, cycle_following_hops=1)
