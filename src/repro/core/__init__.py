"""Packet Re-cycling — the paper's contribution.

The package turns a cellular embedding (:mod:`repro.embedding`) and the
conventional routing tables (:mod:`repro.routing`) into a complete fast
reroute scheme:

* :mod:`~repro.core.tables` — the per-router *cycle following table* of
  Section 4.1 (incoming interface → cycle-following next hop and
  complementary next hop).
* :mod:`~repro.core.protocol` — the forwarding logic: the simple one-bit
  protocol of Section 4.2 and the full protocol with the decreasing-distance
  termination condition of Section 4.3.
* :mod:`~repro.core.scheme` — the :class:`ForwardingScheme` wrappers used by
  the experiments, including overhead accounting.
* :mod:`~repro.core.coverage` — repair-coverage analysis (does PR deliver
  every packet for every non-disconnecting failure combination?).
"""

from repro.core.tables import CycleFollowingRow, CycleFollowingTable, CycleFollowingTables
from repro.core.protocol import PacketRecyclingLogic, SimplePacketRecyclingLogic
from repro.core.scheme import PacketRecycling, SimplePacketRecycling
from repro.core.coverage import CoverageReport, coverage_report
from repro.core.interdomain import InterdomainPacketRecycling, MultihomedPrefix

__all__ = [
    "CycleFollowingRow",
    "CycleFollowingTable",
    "CycleFollowingTables",
    "PacketRecyclingLogic",
    "SimplePacketRecyclingLogic",
    "PacketRecycling",
    "SimplePacketRecycling",
    "CoverageReport",
    "coverage_report",
    "InterdomainPacketRecycling",
    "MultihomedPrefix",
]
