"""Cycle following tables (Section 4.1 of the paper).

"The cycle following table of a router is a three-column table with *i*
entries, where *i* is the number of the interfaces in the router.  The first
column indicates the incoming interface for each entry, while the second and
third columns store next hop information that enables forwarding along
backup paths."

With the rotation-system view of the embedding the two derived columns have
closed forms:

* **cycle following** — the packet arrived over the dart ``Y -> X``; the next
  dart of the same cellular cycle is the face successor of ``Y -> X``.
* **complementary** — the next hop over the complementary cycle of the link
  implied by the cycle-following column; equivalently (and this is how a
  router would implement it) the *rotation successor* of the cycle-following
  outgoing dart at ``X``.

Both facts are verified against the paper's Table 1 in the test-suite.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ProtocolError
from repro.embedding.builder import CellularEmbedding
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph


class CycleFollowingRow:
    """One row of a router's cycle following table."""

    __slots__ = ("incoming", "cycle_following", "complementary")

    def __init__(self, incoming: Dart, cycle_following: Dart, complementary: Dart) -> None:
        self.incoming = incoming
        self.cycle_following = cycle_following
        self.complementary = complementary

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return (
            f"CycleFollowingRow(in={self.incoming.tail}->{self.incoming.head}, "
            f"cf=->{self.cycle_following.head}, comp=->{self.complementary.head})"
        )


class CycleFollowingTable:
    """Cycle following table of a single router.

    Rows are indexed by the *incoming interface*: the dart pointing into this
    router from the neighbor the packet arrived from.
    """

    def __init__(self, node: str, rows: Dict[Dart, CycleFollowingRow]) -> None:
        self.node = node
        self._rows = rows

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> List[CycleFollowingRow]:
        """All rows, ordered by incoming neighbor name for stable display."""
        return [self._rows[key] for key in sorted(self._rows, key=lambda dart: (dart.tail, dart.edge_id))]

    def row_for_ingress(self, ingress: Dart) -> CycleFollowingRow:
        """The row matching the interface the packet arrived on."""
        try:
            return self._rows[ingress]
        except KeyError:
            raise ProtocolError(
                f"router {self.node!r} has no cycle-following row for ingress {ingress!r}"
            ) from None

    def cycle_following_next(self, ingress: Dart) -> Dart:
        """Second column: next hop that keeps the packet on its current cycle."""
        return self.row_for_ingress(ingress).cycle_following

    def complementary_next(self, ingress: Dart) -> Dart:
        """Third column: next hop under failure avoidance."""
        return self.row_for_ingress(ingress).complementary

    def memory_entries(self) -> int:
        """Number of stored next-hop values (two per row)."""
        return 2 * len(self._rows)

    def render(self, interface_name=None) -> str:
        """Format the table the way the paper's Table 1 does.

        ``interface_name`` maps a dart to a printable interface label; the
        default produces the paper's ``I<from><to>`` notation.
        """
        if interface_name is None:
            def interface_name(dart: Dart) -> str:
                return f"I{dart.tail}{dart.head}"

        lines = [f"Cycle following table at node {self.node}."]
        lines.append("Incoming | Cycle Following | Complementary")
        for row in self.rows():
            lines.append(
                f"{interface_name(row.incoming)} | "
                f"{interface_name(row.cycle_following)} | "
                f"{interface_name(row.complementary)}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return f"CycleFollowingTable(node={self.node!r}, rows={len(self._rows)})"


class CycleFollowingTables:
    """Cycle following tables of every router, derived from one embedding.

    This is the artefact the paper's offline server "uploads to all routers":
    once built, forwarding never consults the embedding again.
    """

    def __init__(self, embedding: CellularEmbedding) -> None:
        self.embedding = embedding
        self.graph: Graph = embedding.graph
        self._tables: Dict[str, CycleFollowingTable] = {}
        self._build()

    def _build(self) -> None:
        for node in self.graph.nodes():
            rows: Dict[Dart, CycleFollowingRow] = {}
            for outgoing in self.graph.darts_out(node):
                incoming = outgoing.reversed()
                cycle_following = self.embedding.cycle_following_next(incoming)
                complementary = self.embedding.complementary_next(cycle_following)
                rows[incoming] = CycleFollowingRow(incoming, cycle_following, complementary)
            self._tables[node] = CycleFollowingTable(node, rows)

    def table_at(self, node: str) -> CycleFollowingTable:
        """The cycle following table installed at ``node``."""
        try:
            return self._tables[node]
        except KeyError:
            raise ProtocolError(f"no cycle-following table for node {node!r}") from None

    def cycle_following_next(self, node: str, ingress: Dart) -> Dart:
        """Next hop for a marked packet that arrived at ``node`` over ``ingress``."""
        return self.table_at(node).cycle_following_next(ingress)

    def failure_avoidance_next(self, node: str, failed_outgoing: Dart) -> Dart:
        """Next hop over the complementary cycle of a failed outgoing interface.

        Used both when a failure is first detected during normal routing
        ("forward them along the complementary interface associated with the
        failed outgoing interface") and when a further failure is met while
        cycle following.  In rotation-system terms this is simply the next
        outgoing interface in the rotation at ``node``, which is what makes
        the mechanism implementable with a single table lookup.
        """
        if failed_outgoing.tail != node:
            raise ProtocolError(
                f"failed interface {failed_outgoing!r} does not belong to router {node!r}"
            )
        return self.embedding.complementary_next(failed_outgoing)

    def memory_entries(self) -> int:
        """Total stored next-hop values across every router."""
        return sum(table.memory_entries() for table in self._tables.values())

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return f"CycleFollowingTables(graph={self.graph.name!r}, routers={len(self._tables)})"
