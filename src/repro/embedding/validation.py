"""Validation of rotation systems and cellular embeddings.

The paper's correctness arguments (Section 5) all start from the premise that
"each link belongs to exactly two cycles, each one flowing in opposing
direction".  These checks verify that premise — plus internal consistency of
the data structures — and are used both in tests and before uploading an
embedding to the forwarding plane.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import EmbeddingError, InvalidRotationSystem
from repro.graph.multigraph import Graph
from repro.embedding.faces import FaceSet, euler_genus, trace_faces
from repro.embedding.rotation import RotationSystem


def validate_rotation_system(graph: Graph, rotation: RotationSystem) -> None:
    """Check that ``rotation`` is a valid rotation system of ``graph``.

    * Every node of the graph has a rotation entry.
    * The rotation at a node contains exactly the darts leaving that node,
      each exactly once.

    Raises :class:`InvalidRotationSystem` on the first violation.
    """
    for node in graph.nodes():
        expected = sorted(graph.darts_out(node))
        actual = sorted(rotation.rotation_at(node))
        if expected != actual:
            raise InvalidRotationSystem(
                f"rotation at node {node!r} lists darts {actual!r} "
                f"but the graph has darts {expected!r}"
            )


def validate_embedding(
    graph: Graph, rotation: RotationSystem, faces: Optional[FaceSet] = None
) -> FaceSet:
    """Check the cellular-embedding invariants and return the traced faces.

    Invariants checked:

    * the rotation system is valid for the graph;
    * every dart of the graph lies on exactly one face boundary;
    * every undirected edge is traversed exactly twice across all faces
      (once per direction) — the "exactly two cycles" property of Section 3;
    * consecutive darts of each face are head-to-tail adjacent;
    * the Euler formula yields a non-negative integer genus.
    """
    validate_rotation_system(graph, rotation)
    if faces is None:
        faces = trace_faces(rotation)

    darts_seen = {dart for face in faces for dart in face.darts}
    expected_darts = set(graph.darts())
    if darts_seen != expected_darts:
        missing = expected_darts - darts_seen
        extra = darts_seen - expected_darts
        raise EmbeddingError(
            f"face boundaries do not cover the darts exactly: missing={missing!r} extra={extra!r}"
        )

    traversals_per_edge: dict[int, int] = {}
    for face in faces:
        for dart in face.darts:
            traversals_per_edge[dart.edge_id] = traversals_per_edge.get(dart.edge_id, 0) + 1
        for dart, following in zip(face.darts, face.darts[1:] + face.darts[:1]):
            if dart.head != following.tail:
                raise EmbeddingError(
                    f"face {face.face_id} is not head-to-tail adjacent at {dart!r} -> {following!r}"
                )
    for edge in graph.edges():
        count = traversals_per_edge.get(edge.edge_id, 0)
        if count != 2:
            raise EmbeddingError(
                f"edge {edge.edge_id} ({edge.u}--{edge.v}) is traversed {count} times, expected 2"
            )

    # Raises if the characteristic is inconsistent.
    euler_genus(graph, faces)
    return faces


def embedding_report(graph: Graph, rotation: RotationSystem) -> List[str]:
    """Human-readable summary lines describing an embedding (used by examples)."""
    faces = validate_embedding(graph, rotation)
    genus = euler_genus(graph, faces)
    lines = [
        f"graph: {graph.name} ({graph.number_of_nodes()} nodes, {graph.number_of_edges()} links)",
        f"faces: {len(faces)}",
        f"genus: {genus} ({'planar/spherical' if genus == 0 else 'non-planar surface'})",
    ]
    for face in faces:
        walk = " -> ".join(dart.tail for dart in face.darts)
        lines.append(f"  cycle c{face.face_id + 1}: {walk} -> {face.darts[0].tail}")
    return lines
