"""Face tracing and Euler genus of a rotation system.

The faces of a cellular embedding are the orbits of the face permutation
``d -> successor(reverse(d))`` over the darts of the graph.  Each face is an
oriented closed walk; in the paper's terminology these are the cells
``c1 ... c4`` of Figure 1(a), and they are exactly the cycles that Packet
Re-cycling follows to route around failures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import EmbeddingError
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph
from repro.embedding.rotation import RotationSystem


class Face:
    """One oriented face (cell) of a cellular embedding.

    Attributes
    ----------
    face_id:
        Small integer identifying the face within its :class:`FaceSet`.
    darts:
        The boundary of the face as an ordered tuple of darts; consecutive
        darts are head-to-tail adjacent, and the last dart leads back to the
        first.
    """

    __slots__ = ("face_id", "darts")

    def __init__(self, face_id: int, darts: Sequence[Dart]) -> None:
        if not darts:
            raise EmbeddingError("a face must contain at least one dart")
        self.face_id = face_id
        self.darts = tuple(darts)

    def __len__(self) -> int:
        return len(self.darts)

    def __iter__(self):
        return iter(self.darts)

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Boundary nodes in traversal order (tails of the boundary darts)."""
        return tuple(dart.tail for dart in self.darts)

    @property
    def node_set(self) -> frozenset:
        """Set of nodes on the boundary."""
        return frozenset(dart.tail for dart in self.darts)

    @property
    def edge_ids(self) -> Tuple[int, ...]:
        """Edge ids along the boundary, in traversal order (may repeat)."""
        return tuple(dart.edge_id for dart in self.darts)

    def cost(self, graph: Graph) -> float:
        """Total weight of the boundary walk."""
        return sum(graph.weight(dart.edge_id) for dart in self.darts)

    def contains_dart(self, dart: Dart) -> bool:
        """Whether ``dart`` lies on the boundary (orientation-sensitive)."""
        return dart in self.darts

    def successor_of(self, dart: Dart) -> Dart:
        """The boundary dart immediately following ``dart``."""
        index = self.darts.index(dart)
        return self.darts[(index + 1) % len(self.darts)]

    def is_simple(self) -> bool:
        """Whether the boundary visits every node at most once."""
        nodes = self.nodes
        return len(nodes) == len(set(nodes))

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        walk = "->".join(dart.tail for dart in self.darts)
        return f"Face({self.face_id}: {walk}->{self.darts[0].tail})"


class FaceSet:
    """All faces of a cellular embedding plus dart-to-face lookup."""

    def __init__(self, faces: Sequence[Face]) -> None:
        self.faces = list(faces)
        self._face_of_dart: Dict[Dart, Face] = {}
        for face in self.faces:
            for dart in face.darts:
                if dart in self._face_of_dart:
                    raise EmbeddingError(
                        f"dart {dart!r} appears in more than one face; "
                        "the face set is not a valid cellular decomposition"
                    )
                self._face_of_dart[dart] = face

    def __len__(self) -> int:
        return len(self.faces)

    def __iter__(self):
        return iter(self.faces)

    def face_of(self, dart: Dart) -> Face:
        """The unique face whose boundary contains ``dart``."""
        try:
            return self._face_of_dart[dart]
        except KeyError:
            raise EmbeddingError(f"dart {dart!r} does not belong to any face") from None

    def faces_of_edge(self, dart: Dart) -> Tuple[Face, Face]:
        """The (main, complementary) faces of the link underlying ``dart``.

        The main face contains ``dart`` itself; the complementary face
        contains the reverse dart.  They coincide when the edge is a bridge
        of the embedding (the cell meets itself along the link).
        """
        return self.face_of(dart), self.face_of(dart.reversed())

    def number_of_darts(self) -> int:
        """Total number of darts across all faces."""
        return len(self._face_of_dart)

    def boundary_nodes(self) -> Dict[int, frozenset]:
        """Mapping ``face_id -> boundary node set``."""
        return {face.face_id: face.node_set for face in self.faces}

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return f"FaceSet(faces={len(self.faces)}, darts={len(self._face_of_dart)})"


def trace_faces(rotation: RotationSystem) -> FaceSet:
    """Trace all faces of a rotation system.

    Every dart belongs to exactly one face; the union of all face boundaries
    uses every dart exactly once, which is what makes the embedding cellular.
    """
    remaining = set(rotation.darts())
    faces: List[Face] = []
    # Deterministic order: iterate darts sorted so the face ids are stable.
    for start in sorted(remaining):
        if start not in remaining:
            continue
        walk: List[Dart] = []
        dart = start
        while True:
            if dart not in remaining:
                raise EmbeddingError(
                    "face tracing revisited a consumed dart; the rotation system is inconsistent"
                )
            remaining.discard(dart)
            walk.append(dart)
            dart = rotation.next_in_face(dart)
            if dart == start:
                break
        faces.append(Face(len(faces), walk))
    return FaceSet(faces)


def euler_genus(graph: Graph, faces: FaceSet, components: Optional[int] = None) -> int:
    """Orientable genus of the embedding via the Euler formula.

    For a connected graph embedded cellularly on an orientable surface,
    ``V - E + F = 2 - 2g``.  For a graph with ``c`` components the formula
    becomes ``V - E + F = 2c - 2g`` (one sphere per component joined at no
    points, i.e. the genus adds up).
    """
    if components is None:
        from repro.graph.connectivity import connected_components

        components = max(1, len(connected_components(graph)))
    vertices = graph.number_of_nodes()
    edges = graph.number_of_edges()
    characteristic = vertices - edges + len(faces)
    genus_times_two = 2 * components - characteristic
    if genus_times_two < 0 or genus_times_two % 2 != 0:
        raise EmbeddingError(
            f"inconsistent Euler characteristic: V={vertices} E={edges} F={len(faces)} "
            f"components={components}"
        )
    return genus_times_two // 2


def face_count_upper_bound(graph: Graph) -> int:
    """Maximum possible number of faces of any embedding (genus 0 bound)."""
    from repro.graph.connectivity import connected_components

    components = max(1, len(connected_components(graph)))
    return graph.number_of_edges() - graph.number_of_nodes() + 2 * components


def average_face_length(faces: FaceSet) -> float:
    """Mean boundary length (in darts) over all faces."""
    if not faces.faces:
        return 0.0
    return sum(len(face) for face in faces.faces) / len(faces.faces)


def rotation_from_faces(graph: Graph, face_walks: Iterable[Sequence[Dart]]) -> RotationSystem:
    """Reconstruct the rotation system whose face tracing yields ``face_walks``.

    For consecutive boundary darts ``u -> v`` followed by ``v -> w`` the face
    tracing rule states that ``v -> w`` is the rotation successor of
    ``v -> u``.  Collecting this constraint over all faces determines the
    successor of every dart exactly once, and therefore the whole rotation
    system.  This is how the planar embedder (which manipulates faces, not
    rotations) hands its result back.
    """
    successor: Dict[Dart, Dart] = {}
    for walk in face_walks:
        walk = list(walk)
        for index, dart in enumerate(walk):
            following = walk[(index + 1) % len(walk)]
            if dart.head != following.tail:
                raise EmbeddingError(
                    f"face walk is not head-to-tail adjacent at {dart!r} -> {following!r}"
                )
            key = dart.reversed()
            if key in successor:
                raise EmbeddingError(
                    f"dart {key!r} would receive two rotation successors; faces overlap"
                )
            successor[key] = following

    rotations: Dict[str, List[Dart]] = {}
    for node in graph.nodes():
        darts_at_node = graph.darts_out(node)
        if not darts_at_node:
            rotations[node] = []
            continue
        missing = [dart for dart in darts_at_node if dart not in successor]
        if missing:
            raise EmbeddingError(f"faces do not cover darts {missing!r} at node {node!r}")
        # Follow the successor permutation to obtain the cyclic order.
        start = darts_at_node[0]
        order = [start]
        current = successor[start]
        while current != start:
            if len(order) > len(darts_at_node):
                raise EmbeddingError(
                    f"rotation at node {node!r} does not close into a single cycle"
                )
            order.append(current)
            current = successor[current]
        if len(order) != len(darts_at_node):
            raise EmbeddingError(
                f"faces induce a rotation at {node!r} with multiple cycles; "
                "the face set does not describe a single embedding"
            )
        rotations[node] = order
    return RotationSystem(graph, rotations)
