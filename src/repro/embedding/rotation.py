"""Rotation systems: the combinatorial description of a cellular embedding.

A rotation system assigns to every node a cyclic order of its outgoing darts.
For a connected graph, every rotation system describes exactly one cellular
embedding of the graph on some orientable closed surface (Mohar & Thomassen,
*Graphs on Surfaces*); the surface's genus follows from the Euler formula
once the faces are traced.  This is why the protocol never has to reason
about the surface explicitly: the rotation system *is* the embedding.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import InvalidRotationSystem
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph


class RotationSystem:
    """Cyclic order of outgoing darts around every node of a graph.

    The class is deliberately immutable-ish: mutation happens through
    explicit methods (:meth:`insert_dart_after`, :meth:`move_dart`) so that
    the genus-minimisation heuristics can perform local moves while face
    tracing stays cheap.
    """

    def __init__(self, graph: Graph, rotations: Mapping[str, Sequence[Dart]]) -> None:
        self._graph = graph
        self._rotations: Dict[str, List[Dart]] = {
            node: list(rotations.get(node, [])) for node in graph.nodes()
        }
        self._positions: Dict[Dart, int] = {}
        self._rebuild_positions()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_adjacency_order(cls, graph: Graph) -> "RotationSystem":
        """Rotation system that simply follows edge-insertion order.

        This is the "default" embedding: valid but generally far from the
        minimum genus, hence used only as a starting point for heuristics
        and in tests.
        """
        return cls(graph, {node: graph.darts_out(node) for node in graph.nodes()})

    @classmethod
    def from_sorted_neighbors(cls, graph: Graph) -> "RotationSystem":
        """Rotation system ordering darts by (neighbor name, edge id)."""
        rotations = {
            node: sorted(graph.darts_out(node), key=lambda dart: (dart.head, dart.edge_id))
            for node in graph.nodes()
        }
        return cls(graph, rotations)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying graph."""
        return self._graph

    def rotation_at(self, node: str) -> List[Dart]:
        """The cyclic dart order at ``node`` (as a plain list starting anywhere)."""
        return list(self._rotations[node])

    def degree(self, node: str) -> int:
        """Number of darts at ``node``."""
        return len(self._rotations[node])

    def darts(self) -> List[Dart]:
        """All darts of the rotation system."""
        result: List[Dart] = []
        for node in self._graph.nodes():
            result.extend(self._rotations[node])
        return result

    def successor(self, dart: Dart) -> Dart:
        """The dart following ``dart`` in the cyclic order at its tail node."""
        rotation = self._rotations[dart.tail]
        try:
            index = self._positions[dart]
        except KeyError:
            raise InvalidRotationSystem(f"{dart!r} is not part of the rotation system") from None
        return rotation[(index + 1) % len(rotation)]

    def predecessor(self, dart: Dart) -> Dart:
        """The dart preceding ``dart`` in the cyclic order at its tail node."""
        rotation = self._rotations[dart.tail]
        try:
            index = self._positions[dart]
        except KeyError:
            raise InvalidRotationSystem(f"{dart!r} is not part of the rotation system") from None
        return rotation[(index - 1) % len(rotation)]

    def next_in_face(self, dart: Dart) -> Dart:
        """The dart that follows ``dart`` along the boundary of its face.

        Face tracing rule (fixed orientation convention): after traversing
        ``u -> v``, the boundary continues with the successor of the reverse
        dart ``v -> u`` in the rotation at ``v``.  Orbits of this permutation
        are exactly the faces of the embedding.
        """
        return self.successor(dart.reversed())

    def previous_in_face(self, dart: Dart) -> Dart:
        """Inverse of :meth:`next_in_face`."""
        return self.predecessor(dart).reversed()

    # ------------------------------------------------------------------
    # mutation (used by genus heuristics and the planar embedder)
    # ------------------------------------------------------------------
    def insert_dart_after(self, anchor: Optional[Dart], dart: Dart) -> None:
        """Insert ``dart`` into the rotation at its tail, right after ``anchor``.

        With ``anchor=None`` the dart is appended at the end of the stored
        list (which, the order being cyclic, simply means "anywhere" for an
        empty or singleton rotation).
        """
        rotation = self._rotations.setdefault(dart.tail, [])
        if dart in self._positions:
            raise InvalidRotationSystem(f"{dart!r} already present in the rotation system")
        if anchor is None:
            rotation.append(dart)
        else:
            if anchor.tail != dart.tail:
                raise InvalidRotationSystem(
                    f"anchor {anchor!r} and dart {dart!r} have different tails"
                )
            index = self._index_of(anchor)
            rotation.insert(index + 1, dart)
        self._rebuild_positions(dart.tail)

    def remove_dart(self, dart: Dart) -> None:
        """Remove ``dart`` from the rotation at its tail."""
        rotation = self._rotations[dart.tail]
        index = self._index_of(dart)
        del rotation[index]
        self._rebuild_positions(dart.tail)

    def move_dart(self, dart: Dart, new_index: int) -> None:
        """Move ``dart`` to position ``new_index`` within its tail's rotation."""
        rotation = self._rotations[dart.tail]
        index = self._index_of(dart)
        del rotation[index]
        rotation.insert(new_index % (len(rotation) + 1), dart)
        self._rebuild_positions(dart.tail)

    def set_rotation(self, node: str, darts: Sequence[Dart]) -> None:
        """Replace the full cyclic order at ``node``."""
        for dart in darts:
            if dart.tail != node:
                raise InvalidRotationSystem(f"dart {dart!r} does not leave node {node!r}")
        self._rotations[node] = list(darts)
        self._rebuild_positions(node)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _index_of(self, dart: Dart) -> int:
        try:
            return self._positions[dart]
        except KeyError:
            raise InvalidRotationSystem(f"{dart!r} is not part of the rotation system") from None

    def _rebuild_positions(self, node: Optional[str] = None) -> None:
        if node is None:
            self._positions = {}
            for name, rotation in self._rotations.items():
                for index, dart in enumerate(rotation):
                    self._positions[dart] = index
        else:
            for stale in [dart for dart in self._positions if dart.tail == node]:
                del self._positions[stale]
            for index, dart in enumerate(self._rotations[node]):
                self._positions[dart] = index

    def copy(self) -> "RotationSystem":
        """Deep copy sharing the underlying graph object."""
        return RotationSystem(self._graph, {node: list(r) for node, r in self._rotations.items()})

    def as_mapping(self) -> Dict[str, List[Dart]]:
        """Plain ``node -> [darts]`` mapping (copies, safe to mutate)."""
        return {node: list(rotation) for node, rotation in self._rotations.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RotationSystem):
            return NotImplemented
        return self._canonical() == other._canonical()

    def _canonical(self) -> Dict[str, Tuple[Dart, ...]]:
        """Rotation of every node normalised to start at its smallest dart."""
        canonical: Dict[str, Tuple[Dart, ...]] = {}
        for node, rotation in self._rotations.items():
            if not rotation:
                canonical[node] = ()
                continue
            smallest = min(range(len(rotation)), key=lambda i: rotation[i])
            canonical[node] = tuple(rotation[smallest:] + rotation[:smallest])
        return canonical

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return f"RotationSystem(nodes={len(self._rotations)}, darts={len(self._positions)})"
