"""Cellular graph embeddings: rotation systems, faces, planarity and genus.

Section 3 of the paper bases Packet Re-cycling on a *cellular embedding* of
the network graph on an orientable closed surface.  Combinatorially such an
embedding is fully described by a **rotation system**: a cyclic ordering of
the darts (outgoing directed half-edges) around every node.  Tracing the
orbits of the induced face permutation yields a system of cycles in which
every physical link belongs to exactly two oppositely-oriented cycles — the
*main* cycle and the *complementary* cycle used as a backup path.

The subpackage provides:

* :class:`~repro.embedding.rotation.RotationSystem` — the combinatorial
  embedding itself.
* :mod:`~repro.embedding.faces` — face tracing, Euler genus, face lookup.
* :mod:`~repro.embedding.planarity` — planarity testing and planar (genus 0)
  embedding via the Demoucron–Malgrange–Pertuiset path-addition algorithm.
* :mod:`~repro.embedding.genus` — heuristics that search for low-genus
  (many-face) rotation systems of non-planar graphs.
* :class:`~repro.embedding.builder.CellularEmbedding` and
  :func:`~repro.embedding.builder.embed` — the high-level entry point.
* :mod:`~repro.embedding.serialization` — persistence of embeddings, playing
  the role of the paper's offline embedding server output.
"""

from repro.embedding.rotation import RotationSystem
from repro.embedding.faces import Face, FaceSet, euler_genus, trace_faces
from repro.embedding.planarity import is_planar, planar_embedding
from repro.embedding.genus import (
    greedy_insertion_rotation,
    local_search_rotation,
    minimise_genus,
)
from repro.embedding.builder import CellularEmbedding, embed
from repro.embedding.serialization import (
    embedding_from_dict,
    embedding_to_dict,
    load_embedding,
    save_embedding,
)
from repro.embedding.validation import validate_embedding, validate_rotation_system

__all__ = [
    "RotationSystem",
    "Face",
    "FaceSet",
    "euler_genus",
    "trace_faces",
    "is_planar",
    "planar_embedding",
    "greedy_insertion_rotation",
    "local_search_rotation",
    "minimise_genus",
    "CellularEmbedding",
    "embed",
    "embedding_from_dict",
    "embedding_to_dict",
    "load_embedding",
    "save_embedding",
    "validate_embedding",
    "validate_rotation_system",
]
