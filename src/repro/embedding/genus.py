"""Heuristic search for low-genus rotation systems of non-planar graphs.

Finding the minimum-genus embedding of an arbitrary graph is NP-hard (the
paper cites Mohar & Thomassen for this), but *any* rotation system of a
connected graph is a cellular embedding of *some* orientable surface — so
correctness of Packet Re-cycling never depends on optimality.  Genus only
affects path stretch: fewer faces means longer backup cycles.  The heuristics
below therefore maximise the number of faces:

* :func:`greedy_insertion_rotation` — embed a maximal planar subgraph exactly
  (DMP), then insert the remaining edges one by one, choosing the rotation
  positions of their two darts so that the resulting face count is maximal.
* :func:`local_search_rotation` — hill climbing (optionally with simulated
  annealing style restarts) over single-dart relocation moves.
* :func:`minimise_genus` — the public entry point combining both.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.errors import NotPlanar
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph
from repro.embedding.faces import trace_faces
from repro.embedding.planarity import is_planar, planar_embedding
from repro.embedding.rotation import RotationSystem


def _orbit_stats(rotation: RotationSystem) -> Tuple[int, int]:
    """``(self_paired_edges, face_count)`` of a rotation system, traced leanly.

    Scoring a candidate rotation is the inner loop of every genus heuristic:
    this helper computes exactly what :func:`embedding_score` needs — how many
    orbits the face permutation has and how many edges have both darts on one
    orbit — without materialising :class:`~repro.embedding.faces.Face`
    objects.  Orbit membership is identical to :func:`trace_faces` (the same
    permutation is followed from the same deterministically sorted starts).
    """
    successor = {}
    graph = rotation.graph
    for node in graph.nodes():
        cycle = rotation.rotation_at(node)
        length = len(cycle)
        for index, dart in enumerate(cycle):
            successor[dart] = cycle[(index + 1) % length]
    face_of: dict = {}
    faces = 0
    for start in sorted(successor):
        if start in face_of:
            continue
        dart = start
        while dart not in face_of:
            face_of[dart] = faces
            dart = successor[dart.reversed()]
        faces += 1
    self_paired = 0
    for edge in graph.edges():
        forward, backward = edge.darts()
        # During greedy construction some edges of the graph may not be part
        # of the rotation yet; they simply do not contribute to the score.
        forward_face = face_of.get(forward)
        if forward_face is not None and forward_face == face_of.get(backward):
            self_paired += 1
    return self_paired, faces


def _face_count(rotation: RotationSystem) -> int:
    return _orbit_stats(rotation)[1]


def self_paired_edge_count(rotation: RotationSystem) -> int:
    """Number of edges whose two darts lie on the *same* face.

    The paper calls this the "curved cell" case: the main cycle and the
    complementary cycle of the link coincide.  Such links are exactly the
    ones Packet Re-cycling cannot route around (the backup cycle of the
    failed link is the cycle the packet is already stuck on), so the genus
    heuristics treat eliminating them as more important than gaining an
    extra face.  Planar embeddings of 2-connected graphs never contain them.
    """
    faces = trace_faces(rotation)
    count = 0
    for edge in rotation.graph.edges():
        forward, backward = edge.darts()
        if faces.face_of(forward) is faces.face_of(backward):
            count += 1
    return count


def embedding_score(rotation: RotationSystem) -> Tuple[int, int]:
    """Quality of a rotation system, higher is better.

    Lexicographic: first minimise the number of self-paired (unprotectable)
    edges, then maximise the number of faces (i.e. minimise genus).
    """
    self_paired, faces = _orbit_stats(rotation)
    return (-self_paired, faces)


def greedy_insertion_rotation(graph: Graph, seed: Optional[int] = None) -> RotationSystem:
    """Embed a maximal planar subgraph exactly, then insert leftover edges greedily.

    Every leftover edge is inserted at the pair of rotation positions (one
    per endpoint) that maximises the number of faces of the resulting
    embedding; ties are broken deterministically.
    """
    rng = random.Random(seed)
    planar_core, deferred = _maximal_planar_core(graph, rng if seed is not None else None)

    base = planar_embedding(planar_core)
    rotation = RotationSystem(graph, base.as_mapping())
    for edge_id in deferred:
        _insert_edge_best(rotation, graph, edge_id)
    return rotation


def _maximal_planar_core(
    graph: Graph, rng: Optional[random.Random]
) -> Tuple[Graph, List[int]]:
    """Grow a maximal planar connected subgraph of ``graph``.

    A spanning tree is added first so that the core stays connected (the
    planar embedder requires connectivity); the remaining edges are then
    added greedily in (optionally shuffled) id order as long as planarity is
    preserved.  Returns the core and the list of deferred edge ids.
    """
    from repro.graph.traversal import spanning_tree_edges

    tree = set(spanning_tree_edges(graph))
    core = graph.edge_subgraph(tree, name=f"{graph.name}-planar-core")
    remaining = [edge_id for edge_id in graph.edge_ids() if edge_id not in tree]
    if rng is not None:
        rng.shuffle(remaining)
    deferred: List[int] = []
    for edge_id in remaining:
        edge = graph.edge(edge_id)
        core.add_edge_with_id(edge_id, edge.u, edge.v, edge.weight)
        if not is_planar(core):
            core.remove_edge(edge_id)
            deferred.append(edge_id)
    return core, deferred


def _insert_edge_best(rotation: RotationSystem, graph: Graph, edge_id: int) -> None:
    """Insert both darts of ``edge_id`` at the face-count-maximising positions."""
    edge = graph.edge(edge_id)
    dart_uv = edge.dart_from(edge.u)
    dart_vu = edge.dart_from(edge.v)

    best_score: Optional[Tuple[int, int]] = None
    best_positions: Tuple[int, int] = (0, 0)
    rotation_u = rotation.rotation_at(edge.u)
    rotation_v = rotation.rotation_at(edge.v)
    positions_u = range(len(rotation_u) + 1) if rotation_u else range(1)
    positions_v = range(len(rotation_v) + 1) if rotation_v else range(1)
    for index_u in positions_u:
        for index_v in positions_v:
            candidate = rotation.copy()
            new_u = rotation_u[:index_u] + [dart_uv] + rotation_u[index_u:]
            new_v = rotation_v[:index_v] + [dart_vu] + rotation_v[index_v:]
            candidate.set_rotation(edge.u, new_u)
            candidate.set_rotation(edge.v, new_v)
            score = embedding_score(candidate)
            if best_score is None or score > best_score:
                best_score = score
                best_positions = (index_u, index_v)
    index_u, index_v = best_positions
    rotation.set_rotation(edge.u, rotation_u[:index_u] + [dart_uv] + rotation_u[index_u:])
    rotation.set_rotation(edge.v, rotation_v[:index_v] + [dart_vu] + rotation_v[index_v:])


def repair_self_paired_edges(
    rotation: RotationSystem,
    graph: Graph,
    rounds: int = 4,
) -> RotationSystem:
    """Targeted repair: re-insert the darts of self-paired edges at better spots.

    For every edge whose two darts ended up on the same face, remove both
    darts from the rotation and re-insert them at the position pair with the
    best :func:`embedding_score`.  A few rounds usually eliminate all
    self-paired edges on ISP-scale graphs (when the graph structure allows
    it at all — a cut edge is self-paired in every embedding).
    """
    from repro.graph.connectivity import bridges

    unavoidable = set(bridges(graph))
    current = rotation.copy()
    for _round in range(rounds):
        faces = trace_faces(current)
        face_of = {dart: face for face in faces for dart in face.darts}
        offenders = []
        for edge in graph.edges():
            if edge.edge_id in unavoidable:
                continue
            forward, backward = edge.darts()
            if face_of.get(forward) is face_of.get(backward):
                offenders.append(edge.edge_id)
        if not offenders:
            break
        for edge_id in offenders:
            edge = graph.edge(edge_id)
            forward, backward = edge.darts()
            current.remove_dart(forward)
            current.remove_dart(backward)
            _insert_edge_best(current, graph, edge_id)
    return current


def local_search_rotation(
    graph: Graph,
    initial: Optional[RotationSystem] = None,
    iterations: int = 200,
    seed: Optional[int] = None,
) -> RotationSystem:
    """Hill-climbing over single-dart relocation moves, maximising face count.

    Starting from ``initial`` (or the adjacency-order rotation), repeatedly
    pick a dart and a new position within its node's rotation at random and
    keep the move if the number of faces does not decrease.  The search stops
    after ``iterations`` candidate moves.
    """
    rng = random.Random(seed)
    current = (initial or RotationSystem.from_adjacency_order(graph)).copy()
    movable = [node for node in graph.nodes() if graph.degree(node) >= 3]
    if not movable:
        return current

    # The hill climb scores thousands of candidate rotations, so the loop
    # runs on an integer encoding of the darts: rotations become lists of
    # ints, the face permutation becomes one flat successor array, and a
    # score is one O(darts) orbit trace over plain lists.  The random draws
    # (``choice`` indexes by position, the int lists mirror the dart lists)
    # and the score values are identical to the object-level implementation,
    # so the search visits and returns exactly the same rotation system.
    rotations = current.as_mapping()
    darts: List[Dart] = [dart for node in graph.nodes() for dart in rotations[node]]
    index_of = {dart: position for position, dart in enumerate(darts)}
    total = len(darts)
    reverse = [index_of[dart.reversed()] for dart in darts]
    rot = {
        node: [index_of[dart] for dart in rotations[node]] for node in graph.nodes()
    }
    edge_pairs: List[Tuple[int, int]] = []
    for edge in graph.edges():
        forward, backward = edge.darts()
        forward_index = index_of.get(forward)
        backward_index = index_of.get(backward)
        if forward_index is not None and backward_index is not None:
            edge_pairs.append((forward_index, backward_index))

    successor = [0] * total

    def sync(node: str) -> None:
        cycle = rot[node]
        length = len(cycle)
        for position in range(length):
            successor[cycle[position]] = cycle[(position + 1) % length]

    for node in rot:
        sync(node)

    def score() -> Tuple[int, int]:
        face_of = [-1] * total
        faces = 0
        for start in range(total):
            if face_of[start] >= 0:
                continue
            dart = start
            while face_of[dart] < 0:
                face_of[dart] = faces
                dart = successor[reverse[dart]]
            faces += 1
        self_paired = 0
        for forward_index, backward_index in edge_pairs:
            if face_of[forward_index] == face_of[backward_index]:
                self_paired += 1
        return (-self_paired, faces)

    current_score = score()
    for _round in range(iterations):
        node = rng.choice(movable)
        cycle = rot[node]
        dart = rng.choice(cycle)
        new_index = rng.randrange(len(cycle))
        old_index = cycle.index(dart)
        del cycle[old_index]
        cycle.insert(new_index, dart)
        sync(node)
        candidate_score = score()
        if candidate_score >= current_score:
            current_score = candidate_score
        else:
            del cycle[cycle.index(dart)]
            cycle.insert(old_index, dart)
            sync(node)
    return RotationSystem(
        graph, {node: [darts[i] for i in cycle] for node, cycle in rot.items()}
    )


def minimise_genus(
    graph: Graph,
    method: str = "auto",
    iterations: int = 200,
    seed: Optional[int] = None,
    restarts: int = 4,
) -> RotationSystem:
    """Best-effort low-genus rotation system of a connected graph.

    ``method``:

    * ``"auto"`` — exact planar embedding when the graph is planar, otherwise
      up to ``restarts`` rounds of greedy insertion + local search + repair,
      keeping the best result and stopping early once an embedding with no
      self-paired edges (a "strong" embedding, the kind PR needs for full
      single-failure coverage) has been found.
    * ``"planar"`` — exact planar embedding; raises :class:`NotPlanar` if
      impossible.
    * ``"greedy"`` — greedy edge insertion only.
    * ``"local-search"`` — local search from the adjacency-order rotation.
    * ``"adjacency"`` — the raw adjacency-order rotation (no optimisation);
      useful as a worst-case ablation point.
    """
    if method == "planar":
        return planar_embedding(graph)
    if method == "adjacency":
        return RotationSystem.from_adjacency_order(graph)
    if method == "greedy":
        return greedy_insertion_rotation(graph, seed=seed)
    if method == "local-search":
        return local_search_rotation(graph, iterations=iterations, seed=seed)
    if method != "auto":
        raise ValueError(f"unknown embedding method {method!r}")

    if is_planar(graph):
        return planar_embedding(graph)

    base_seed = 0 if seed is None else seed
    best: Optional[RotationSystem] = None
    best_score: Optional[Tuple[int, int]] = None

    def consider(candidate: RotationSystem) -> None:
        nonlocal best, best_score
        repaired = repair_self_paired_edges(candidate, graph)
        if embedding_score(repaired) >= embedding_score(candidate):
            candidate = repaired
        score = embedding_score(candidate)
        if best_score is None or score > best_score:
            best, best_score = candidate, score

    # A longer budget for the plain local search pass: it starts from a much
    # worse point (adjacency order) than the greedy-insertion pass does.
    plain_iterations = max(iterations, 25 * graph.number_of_edges())

    for attempt in range(max(1, restarts)):
        attempt_seed = base_seed + attempt
        greedy = greedy_insertion_rotation(graph, seed=attempt_seed)
        improved = local_search_rotation(
            graph, initial=greedy, iterations=iterations, seed=attempt_seed
        )
        consider(improved if embedding_score(improved) >= embedding_score(greedy) else greedy)
        if best_score is not None and best_score[0] == 0:
            # No self-paired edges: every link has a usable backup cycle.
            break
        # Second try within the same attempt: local search from scratch, which
        # escapes starting points where greedy insertion trapped itself.
        consider(local_search_rotation(graph, iterations=plain_iterations, seed=attempt_seed))
        if best_score is not None and best_score[0] == 0:
            break
    assert best is not None  # restarts >= 1 guarantees at least one candidate
    return best
