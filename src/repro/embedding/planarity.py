"""Planarity testing and planar (genus 0) cellular embedding.

The paper notes that for planar networks "very efficient O(n) algorithms are
available" for computing the embedding.  We implement the classic
Demoucron–Malgrange–Pertuiset (DMP) *path addition* algorithm instead: it is
quadratic rather than linear, but it is simple, easy to verify, and more than
fast enough for ISP-scale topologies (tens to hundreds of nodes).

The algorithm embeds one biconnected component at a time:

1. Start from an arbitrary cycle, which splits the sphere into two faces.
2. Repeatedly consider the *bridges* (fragments) of the not-yet-embedded
   part relative to the embedded subgraph.  Each bridge must be drawable
   inside a single face whose boundary contains all of the bridge's
   attachment vertices; if some bridge has no such *admissible* face the
   graph is not planar.
3. Choose a bridge (preferring one with a unique admissible face, which is
   forced), embed one path of it through the face, splitting that face in
   two, and repeat until every edge is embedded.

The face walks maintained by the algorithm are finally converted back into a
rotation system via :func:`repro.embedding.faces.rotation_from_faces`.
Rotation systems of separate biconnected components are merged at cut
vertices by concatenation, which preserves genus 0.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import DisconnectedGraph, EmbeddingError, NotPlanar
from repro.graph.connectivity import biconnected_edge_components, is_connected
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph
from repro.graph.traversal import find_cycle
from repro.embedding.faces import rotation_from_faces
from repro.embedding.rotation import RotationSystem


class _Bridge:
    """A fragment of the not-yet-embedded graph relative to the embedded part."""

    __slots__ = ("edge_ids", "internal_nodes", "attachments")

    def __init__(
        self,
        edge_ids: Set[int],
        internal_nodes: Set[str],
        attachments: Set[str],
    ) -> None:
        self.edge_ids = edge_ids
        self.internal_nodes = internal_nodes
        self.attachments = attachments


def _cycle_node_sequence(graph: Graph, cycle_edge_ids: Sequence[int]) -> List[Tuple[str, int]]:
    """Order the edges of a cycle into a closed walk ``[(node, edge_to_next), ...]``."""
    edges = [graph.edge(edge_id) for edge_id in cycle_edge_ids]
    if not edges:
        raise EmbeddingError("cannot order an empty cycle")
    if len(edges) == 1:
        raise EmbeddingError("a single edge does not form a cycle")
    incidence: Dict[str, List[int]] = {}
    for edge in edges:
        incidence.setdefault(edge.u, []).append(edge.edge_id)
        incidence.setdefault(edge.v, []).append(edge.edge_id)
    for node, incident in incidence.items():
        if len(incident) != 2:
            raise EmbeddingError(f"edge set is not a simple cycle at node {node!r}")
    start = edges[0].u
    walk: List[Tuple[str, int]] = []
    node = start
    used: Set[int] = set()
    while True:
        options = [edge_id for edge_id in incidence[node] if edge_id not in used]
        if not options:
            break
        edge_id = options[0]
        used.add(edge_id)
        walk.append((node, edge_id))
        node = graph.edge(edge_id).other(node)
        if node == start:
            break
    if len(walk) != len(edges):
        raise EmbeddingError("edge set is not a single simple cycle")
    return walk


def _cyclic_slice(darts: Sequence[Dart], start: int, stop: int) -> List[Dart]:
    """Darts from index ``start`` (inclusive) up to ``stop`` (exclusive), cyclically."""
    if start <= stop:
        return list(darts[start:stop])
    return list(darts[start:]) + list(darts[:stop])


def _compute_bridges(graph: Graph, embedded_nodes: Set[str], embedded_edges: Set[int]) -> List[_Bridge]:
    """All bridges (fragments) of ``graph`` relative to the embedded subgraph."""
    bridges: List[_Bridge] = []
    # Singleton bridges: a non-embedded edge whose endpoints are both embedded.
    for edge in graph.edges():
        if edge.edge_id in embedded_edges:
            continue
        if edge.u in embedded_nodes and edge.v in embedded_nodes:
            bridges.append(_Bridge({edge.edge_id}, set(), {edge.u, edge.v}))
    # Component bridges: connected components of the non-embedded nodes, plus
    # every edge incident to them and the embedded nodes they attach to.
    unvisited = [node for node in graph.nodes() if node not in embedded_nodes]
    seen: Set[str] = set()
    for root in unvisited:
        if root in seen:
            continue
        seen.add(root)
        internal = {root}
        queue = deque([root])
        edge_ids: Set[int] = set()
        attachments: Set[str] = set()
        while queue:
            node = queue.popleft()
            for neighbor, edge_id, _weight in graph.iter_adjacent(node):
                edge_ids.add(edge_id)
                if neighbor in embedded_nodes:
                    attachments.add(neighbor)
                elif neighbor not in seen:
                    seen.add(neighbor)
                    internal.add(neighbor)
                    queue.append(neighbor)
        bridges.append(_Bridge(edge_ids, internal, attachments))
    return bridges


def _path_through_bridge(
    graph: Graph,
    bridge: _Bridge,
    start: str,
    embedded_nodes: Set[str],
) -> Tuple[List[str], List[int]]:
    """A path from attachment ``start`` through the bridge to another attachment.

    Intermediate nodes are internal to the bridge; only the endpoints touch
    the embedded subgraph.  Returns ``(node_sequence, edge_id_sequence)``.
    """
    if not bridge.internal_nodes:
        # Singleton edge bridge.
        edge_id = next(iter(bridge.edge_ids))
        edge = graph.edge(edge_id)
        return [edge.u, edge.v] if edge.u == start else [edge.v, edge.u], [edge_id]

    parents: Dict[str, Tuple[str, int]] = {}
    queue = deque([start])
    visited = {start}
    target: Optional[str] = None
    while queue and target is None:
        node = queue.popleft()
        if node != start and node in embedded_nodes:
            continue
        for neighbor, edge_id, _weight in graph.iter_adjacent(node):
            if edge_id not in bridge.edge_ids or neighbor in visited:
                continue
            visited.add(neighbor)
            parents[neighbor] = (node, edge_id)
            if neighbor in embedded_nodes and neighbor != start:
                target = neighbor
                break
            queue.append(neighbor)
    if target is None:
        raise EmbeddingError("bridge has no second attachment reachable from the first")
    nodes = [target]
    edges: List[int] = []
    node = target
    while node != start:
        parent, edge_id = parents[node]
        edges.append(edge_id)
        nodes.append(parent)
        node = parent
    nodes.reverse()
    edges.reverse()
    return nodes, edges


def _embed_biconnected(graph: Graph) -> Dict[str, List[Dart]]:
    """DMP embedding of one biconnected component given as a standalone graph.

    Returns the rotation (list of darts) at every node of the component.
    Raises :class:`NotPlanar` if the component cannot be drawn on the sphere.
    """
    if graph.number_of_edges() == 1:
        edge = graph.edges()[0]
        return {edge.u: [edge.dart_from(edge.u)], edge.v: [edge.dart_from(edge.v)]}

    cycle_edge_ids = find_cycle(graph)
    if cycle_edge_ids is None:
        raise EmbeddingError("biconnected component with >1 edge must contain a cycle")
    walk = _cycle_node_sequence(graph, cycle_edge_ids)

    forward = [graph.edge(edge_id).dart_from(node) for node, edge_id in walk]
    backward = [dart.reversed() for dart in reversed(forward)]
    faces: List[List[Dart]] = [forward, backward]

    embedded_nodes: Set[str] = {node for node, _edge_id in walk}
    embedded_edges: Set[int] = {edge_id for _node, edge_id in walk}
    total_edges = graph.number_of_edges()

    while len(embedded_edges) < total_edges:
        bridges = _compute_bridges(graph, embedded_nodes, embedded_edges)
        if not bridges:
            raise EmbeddingError("edges remain but no bridge was found; graph inconsistent")

        chosen: Optional[_Bridge] = None
        chosen_faces: List[int] = []
        for bridge in bridges:
            admissible = [
                index
                for index, face in enumerate(faces)
                if bridge.attachments <= {dart.tail for dart in face}
            ]
            if not admissible:
                raise NotPlanar(
                    f"graph {graph.name!r} is not planar: a fragment with attachments "
                    f"{sorted(bridge.attachments)} fits in no face"
                )
            if chosen is None or (len(admissible) == 1 and len(chosen_faces) != 1):
                chosen = bridge
                chosen_faces = admissible
            if len(chosen_faces) == 1:
                break
        assert chosen is not None  # guaranteed: bridges is non-empty

        face_index = chosen_faces[0]
        face = faces[face_index]
        boundary_nodes = [dart.tail for dart in face]

        start = sorted(chosen.attachments)[0]
        path_nodes, path_edges = _path_through_bridge(graph, chosen, start, embedded_nodes)
        end = path_nodes[-1]

        position_start = boundary_nodes.index(start)
        position_end = boundary_nodes.index(end)

        path_darts = [
            graph.edge(edge_id).dart_from(node)
            for node, edge_id in zip(path_nodes[:-1], path_edges)
        ]
        reverse_path_darts = [dart.reversed() for dart in reversed(path_darts)]

        face_one = path_darts + _cyclic_slice(face, position_end, position_start)
        face_two = reverse_path_darts + _cyclic_slice(face, position_start, position_end)

        faces[face_index] = face_one
        faces.append(face_two)

        embedded_nodes.update(path_nodes)
        embedded_edges.update(path_edges)

    rotation = rotation_from_faces(graph, faces)
    return rotation.as_mapping()


def planar_embedding(graph: Graph) -> RotationSystem:
    """Genus-0 rotation system of a connected planar graph.

    Each biconnected component is embedded independently with DMP and the
    per-node rotations are concatenated at cut vertices, which keeps the
    composite embedding planar.  Raises :class:`NotPlanar` when the graph is
    not planar and :class:`DisconnectedGraph` when it is not connected.
    """
    if graph.number_of_nodes() == 0:
        return RotationSystem(graph, {})
    if not is_connected(graph):
        raise DisconnectedGraph(
            f"planar_embedding requires a connected graph; {graph.name!r} is not connected"
        )

    rotations: Dict[str, List[Dart]] = {node: [] for node in graph.nodes()}
    for component_edges in biconnected_edge_components(graph):
        component_nodes: Set[str] = set()
        for edge_id in component_edges:
            edge = graph.edge(edge_id)
            component_nodes.add(edge.u)
            component_nodes.add(edge.v)
        component = graph.subgraph(component_nodes)
        for edge_id in component.edge_ids():
            if edge_id not in component_edges:
                component.remove_edge(edge_id)
        component_rotation = _embed_biconnected(component)
        for node, darts in component_rotation.items():
            rotations[node].extend(darts)
    return RotationSystem(graph, rotations)


def is_planar(graph: Graph) -> bool:
    """Whether the graph admits a planar embedding.

    Uses the edge-count bound ``E <= 3V - 6`` on the simplified graph as a
    quick rejection test and falls back to actually running the embedder.
    """
    simple_edges = {
        tuple(sorted((edge.u, edge.v))) for edge in graph.edges()
    }
    vertices = graph.number_of_nodes()
    if vertices >= 3 and len(simple_edges) > 3 * vertices - 6:
        return False
    if not is_connected(graph):
        # Planarity is a per-component property; check each component.
        from repro.graph.connectivity import connected_components

        return all(
            is_planar(graph.subgraph(component)) for component in connected_components(graph)
        )
    try:
        planar_embedding(graph)
    except NotPlanar:
        return False
    return True
