"""High-level embedding API: :class:`CellularEmbedding` and :func:`embed`.

This module plays the role of the paper's "server designated for that
purpose": given a network graph it computes (offline, before any packet is
forwarded) the cellular embedding from which every router's cycle-following
table is later derived.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DisconnectedGraph
from repro.graph.connectivity import is_connected
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph
from repro.embedding.faces import Face, FaceSet, average_face_length, euler_genus, trace_faces
from repro.embedding.genus import minimise_genus
from repro.embedding.rotation import RotationSystem


class CellularEmbedding:
    """A graph together with a rotation system and its traced faces.

    This is the single artefact the Packet Re-cycling control plane needs:
    the cycle-following table of every router is read straight off the face
    structure (Section 4.1 of the paper).
    """

    def __init__(self, graph: Graph, rotation: RotationSystem) -> None:
        self.graph = graph
        self.rotation = rotation
        self.faces: FaceSet = trace_faces(rotation)

    # ------------------------------------------------------------------
    # cycle structure queries used by the protocol
    # ------------------------------------------------------------------
    def main_cycle(self, dart: Dart) -> Face:
        """The cycle associated with transmitting over ``dart`` (its own face)."""
        return self.faces.face_of(dart)

    def complementary_cycle(self, dart: Dart) -> Face:
        """The oppositely-oriented cycle over the same link (face of the reverse dart).

        This is the backup cycle followed when the link underlying ``dart``
        fails.
        """
        return self.faces.face_of(dart.reversed())

    def cycle_following_next(self, ingress: Dart) -> Dart:
        """Second column of the cycle following table (Section 4.1).

        For a packet that *arrived* over ``ingress`` (a dart pointing into
        the current router), the next dart along the same cellular cycle.
        """
        return self.rotation.next_in_face(ingress)

    def complementary_next(self, outgoing: Dart) -> Dart:
        """Next hop along the complementary cycle of the link of ``outgoing``.

        Third column of the cycle following table: the dart used to bypass
        ``outgoing`` when that link has failed.  It continues the face of the
        reverse dart, i.e. the complementary cycle, from the same router.
        """
        return self.rotation.next_in_face(outgoing.reversed())

    # ------------------------------------------------------------------
    # summary properties
    # ------------------------------------------------------------------
    @property
    def number_of_faces(self) -> int:
        """Number of cells of the embedding."""
        return len(self.faces)

    @property
    def genus(self) -> int:
        """Orientable genus of the embedding surface."""
        return euler_genus(self.graph, self.faces)

    @property
    def is_planar(self) -> bool:
        """Whether the embedding lies on the sphere (genus 0)."""
        return self.genus == 0

    @property
    def average_cycle_length(self) -> float:
        """Mean face boundary length in darts."""
        return average_face_length(self.faces)

    @property
    def longest_cycle_length(self) -> int:
        """Length (in darts) of the longest face boundary."""
        return max((len(face) for face in self.faces), default=0)

    def __repr__(self) -> str:  # pragma: no cover - trivial formatting
        return (
            f"CellularEmbedding({self.graph.name!r}, faces={self.number_of_faces}, "
            f"genus={self.genus})"
        )


def embed(
    graph: Graph,
    method: str = "auto",
    iterations: int = 200,
    seed: Optional[int] = None,
) -> CellularEmbedding:
    """Compute a cellular embedding of a connected network graph.

    Parameters
    ----------
    graph:
        The network topology.  Must be connected (the paper's protocol is
        intra-domain; a disconnected "network" is not meaningful).
    method:
        Passed to :func:`repro.embedding.genus.minimise_genus`: ``"auto"``,
        ``"planar"``, ``"greedy"``, ``"local-search"`` or ``"adjacency"``.
    iterations:
        Local-search budget for non-planar graphs.
    seed:
        Seed for the randomised heuristics (ignored by exact planar
        embedding).
    """
    if graph.number_of_nodes() > 0 and not is_connected(graph):
        raise DisconnectedGraph(
            f"cannot embed {graph.name!r}: the Packet Re-cycling control plane "
            "requires a connected intra-domain topology"
        )
    rotation = minimise_genus(graph, method=method, iterations=iterations, seed=seed)
    return CellularEmbedding(graph, rotation)
