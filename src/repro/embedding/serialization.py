"""Persistence of cellular embeddings.

In the paper the embedding is computed "offline, on a server designated for
that purpose" and then "uploaded to all routers".  These helpers serialise an
embedding (graph + rotation system) to a plain JSON-compatible dictionary so
that the artefact produced by the offline stage can be stored, shipped and
re-loaded by the forwarding plane without recomputation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import EmbeddingError
from repro.graph.darts import Dart
from repro.graph.multigraph import Graph
from repro.embedding.builder import CellularEmbedding
from repro.embedding.rotation import RotationSystem


_FORMAT_VERSION = 1


def embedding_to_dict(embedding: CellularEmbedding) -> Dict[str, Any]:
    """Serialise an embedding (graph, weights and rotation system) to a dict."""
    graph = embedding.graph
    return {
        "format_version": _FORMAT_VERSION,
        "name": graph.name,
        "nodes": graph.nodes(),
        "edges": [
            {"id": edge.edge_id, "u": edge.u, "v": edge.v, "weight": edge.weight}
            for edge in graph.edges()
        ],
        "rotation": {
            node: [[dart.edge_id, dart.head] for dart in embedding.rotation.rotation_at(node)]
            for node in graph.nodes()
        },
    }


def embedding_from_dict(payload: Dict[str, Any]) -> CellularEmbedding:
    """Rebuild an embedding from the dictionary produced by :func:`embedding_to_dict`."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise EmbeddingError(f"unsupported embedding format version {version!r}")
    graph = Graph(payload.get("name", "network"))
    for node in payload["nodes"]:
        graph.ensure_node(node)
    for edge in payload["edges"]:
        graph.add_edge_with_id(edge["id"], edge["u"], edge["v"], edge["weight"])
    rotations = {
        node: [Dart(edge_id, node, head) for edge_id, head in darts]
        for node, darts in payload["rotation"].items()
    }
    rotation = RotationSystem(graph, rotations)
    return CellularEmbedding(graph, rotation)


def save_embedding(embedding: CellularEmbedding, path: Union[str, Path]) -> Path:
    """Write an embedding to ``path`` as JSON and return the path."""
    path = Path(path)
    path.write_text(json.dumps(embedding_to_dict(embedding), indent=2, sort_keys=True))
    return path


def load_embedding(path: Union[str, Path]) -> CellularEmbedding:
    """Load an embedding previously written by :func:`save_embedding`."""
    payload = json.loads(Path(path).read_text())
    return embedding_from_dict(payload)
